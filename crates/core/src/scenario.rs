//! The unified `Scenario` → [`Backend`] → [`Report`] API.
//!
//! The paper answers one question — *what does `Gossip(n, P, q)`
//! deliver?* — and this workspace answers it five ways through one
//! declarative entry point:
//!
//! | backend | layer | honours |
//! |---|---|---|
//! | `AnalyticBackend` | generating functions (Eqs. 3–12) | fanout, `q`, loss, protocol, executions |
//! | `GraphBackend` | random-graph percolation census | fanout, `q`, loss, replications |
//! | `ProtocolBackend` | Monte-Carlo protocol runs (§5) | fanout, `q`, membership, protocol, replications |
//! | `NetSimBackend` | discrete-event network simulation | everything above + latency, loss, crash schedules |
//! | `RuntimeBackend` | live threads exchanging real messages | fanout, `q`, loss, latency (virtual clock), crash schedules, [`RuntimeSpec`] |
//!
//! The first four layers *model* the protocol; the fifth (crate
//! `gossip-runtime`) *executes* it — one thread per node, typed gossip
//! messages over an in-process channel or a TCP-loopback transport — so
//! the analytic predictions are validated against a real message-passing
//! implementation, not only simulations.
//!
//! The moving parts:
//!
//! * [`Scenario`] — a serde-friendly, data-describable experiment
//!   description: group size, fanout ([`FanoutSpec`], all eight
//!   distributions plus mixtures), failures ([`FailureSpec`]), message
//!   loss, latency ([`LatencySpec`]), membership ([`MembershipSpec`]),
//!   protocol variant ([`ProtocolSpec`]), runtime execution knobs
//!   ([`RuntimeSpec`]), replication count, and seed.
//! * [`Backend`] — an object-safe evaluator `&Scenario → Report`. The
//!   analytic backend lives here ([`AnalyticBackend`]); the graph,
//!   protocol, netsim, and runtime backends live in their own crates
//!   (`gossip_rgraph::GraphBackend`, `gossip_protocol::ProtocolBackend`,
//!   `gossip_protocol::NetSimBackend`, `gossip_runtime::RuntimeBackend`)
//!   and are re-exported together at the workspace root (`gossip`).
//! * [`Report`] — a typed result every backend fills the same way, so
//!   a Fig. 4 operating point evaluated analytically and by simulation
//!   is directly comparable.
//! * [`SweepGrid`] — a cartesian sweep runner that fans scenarios over
//!   `gossip_stats::parallel` with deterministic per-cell seeds.
//!
//! # Failure semantics and the reliability denominator
//!
//! Two conventions every timed backend (netsim, runtime) shares, stated
//! once here so the layers cannot drift apart:
//!
//! * **[`FailureSpec::Schedule`] is fail-stop at a virtual instant.** A
//!   `(time_ns, member)` pair crashes that member at that virtual time:
//!   messages it already relayed stand, messages arriving afterwards are
//!   absorbed, and a `time_ns = 0` entry means the member was never up.
//!   Crashing is idempotent — duplicate entries are harmless. Only the
//!   timed backends can honour a schedule; the analytic and graph layers
//!   return [`ModelError::Unsupported`].
//! * **The reliability denominator is "members alive at the end".** A
//!   member crashed by the end of the run (by a `Random` draw, a
//!   schedule entry, a churn *leave*, or a correlated zone failure)
//!   drops out of both the numerator and the denominator — the paper's
//!   `R` is the fraction of *nonfailed* members reached. A member that
//!   *joined* mid-run (churn) counts in the denominator from its join
//!   time onward: a joiner that arrives after dissemination quiesced
//!   never hears the broadcast and drags reliability down, which is
//!   exactly the churn cost the static model cannot price.
//!
//! ```
//! use gossip_model::scenario::{AnalyticBackend, Backend, FanoutSpec, Scenario};
//!
//! // The paper's headline point: n = 1000, Po(4) fanout, q = 0.9.
//! let scenario = Scenario::new(1000, FanoutSpec::poisson(4.0)).with_failure_ratio(0.9);
//! let report = AnalyticBackend.evaluate(&scenario).unwrap();
//! assert!((report.reliability - 0.9695).abs() < 1e-3);
//! assert!((report.critical_q.unwrap() - 0.25).abs() < 1e-12);
//! ```

use serde::{Deserialize, Serialize};

use crate::distribution::{
    BinomialFanout, EmpiricalFanout, FanoutDistribution, FixedFanout, GeometricFanout,
    MixtureFanout, PoissonFanout, PowerLawFanout, UniformFanout,
};
use crate::error::ModelError;
use crate::loss::LossyGossip;
use crate::percolation::SitePercolation;
use crate::success;
use gossip_faults::{FaultError, FaultReduction, FaultSpec};
use gossip_stats::parallel::parallel_map;
use gossip_stats::rng::SplitMix64;
use gossip_topology::{TopologyError, TopologySpec};
use gossip_traffic::{TrafficError, TrafficReport, TrafficSpec};

/// Data description of a fanout distribution `P` — every family the
/// model supports, including recursive mixtures, as plain data that can
/// be built programmatically or deserialized from JSON.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FanoutSpec {
    /// Poisson with mean `z` (the paper's §4.3 closed-form case).
    Poisson {
        /// Mean fanout `z ≥ 0`.
        mean: f64,
    },
    /// Every member relays to exactly `fanout` targets.
    Fixed {
        /// The constant fanout.
        fanout: usize,
    },
    /// Binomial `B(m, p)`.
    Binomial {
        /// Number of trials.
        m: usize,
        /// Success probability.
        p: f64,
    },
    /// Geometric with stop probability `p` (mean `(1 − p)/p`).
    Geometric {
        /// Stop probability in `(0, 1]`.
        p: f64,
    },
    /// Discrete uniform on `[lo, hi]`.
    Uniform {
        /// Smallest fanout.
        lo: usize,
        /// Largest fanout (inclusive).
        hi: usize,
    },
    /// Truncated power law `k^{−α}` on `[kmin, kmax]`.
    PowerLaw {
        /// Exponent `α > 0`.
        alpha: f64,
        /// Smallest fanout (`≥ 1`).
        kmin: usize,
        /// Largest fanout (inclusive).
        kmax: usize,
    },
    /// Arbitrary pmf table: `weights[k] ∝ Pr(F = k)`.
    Empirical {
        /// Non-negative weights, normalized by the constructor.
        weights: Vec<f64>,
    },
    /// Weighted mixture of other fanout specs (heterogeneous fleets).
    Mixture {
        /// `(weight, component)` pairs; weights are normalized.
        components: Vec<(f64, FanoutSpec)>,
    },
}

impl FanoutSpec {
    /// Poisson fanout with the given mean.
    pub fn poisson(mean: f64) -> Self {
        FanoutSpec::Poisson { mean }
    }

    /// Fixed fanout.
    pub fn fixed(fanout: usize) -> Self {
        FanoutSpec::Fixed { fanout }
    }

    /// Geometric fanout with the given *mean* (stop probability
    /// `1/(mean + 1)`).
    pub fn geometric_with_mean(mean: f64) -> Self {
        FanoutSpec::Geometric {
            p: 1.0 / (mean + 1.0),
        }
    }

    /// Checks every parameter domain *without* constructing the
    /// distribution — cheap even for table-backed families (power-law,
    /// empirical), so validation can run per sweep cell for free.
    pub fn validate(&self) -> Result<(), ModelError> {
        fn invalid(
            name: &'static str,
            value: f64,
            requirement: &'static str,
        ) -> Result<(), ModelError> {
            Err(ModelError::InvalidParameter {
                name,
                value,
                requirement,
            })
        }
        match self {
            FanoutSpec::Poisson { mean } => {
                if !(mean.is_finite() && *mean >= 0.0) {
                    return invalid("mean", *mean, "Poisson mean must be finite and >= 0");
                }
            }
            FanoutSpec::Fixed { .. } => {}
            FanoutSpec::Binomial { p, .. } => {
                if !(p.is_finite() && (0.0..=1.0).contains(p)) {
                    return invalid("p", *p, "binomial probability must lie in [0, 1]");
                }
            }
            FanoutSpec::Geometric { p } => {
                if !(p.is_finite() && *p > 0.0 && *p <= 1.0) {
                    return invalid("p", *p, "geometric stop probability must lie in (0, 1]");
                }
            }
            FanoutSpec::Uniform { lo, hi } => {
                if lo > hi {
                    return invalid("lo", *lo as f64, "uniform support needs lo <= hi");
                }
            }
            FanoutSpec::PowerLaw { alpha, kmin, kmax } => {
                if !(alpha.is_finite() && *alpha > 0.0) {
                    return invalid("alpha", *alpha, "power-law exponent must be positive");
                }
                if *kmin < 1 || kmin > kmax {
                    return invalid(
                        "kmin",
                        *kmin as f64,
                        "power-law support needs 1 <= kmin <= kmax",
                    );
                }
            }
            FanoutSpec::Empirical { weights } => {
                let total: f64 = weights.iter().sum();
                if weights.is_empty() || !(total.is_finite() && total > 0.0) {
                    return invalid(
                        "weights",
                        total,
                        "empirical table needs positive total weight",
                    );
                }
                if weights.iter().any(|w| *w < 0.0 || !w.is_finite()) {
                    return invalid("weights", f64::NAN, "empirical weights must be >= 0");
                }
            }
            FanoutSpec::Mixture { components } => {
                if components.is_empty() {
                    return Err(ModelError::Degenerate {
                        why: "mixture needs at least one component",
                    });
                }
                let total: f64 = components.iter().map(|(w, _)| *w).sum();
                if !(total.is_finite() && total > 0.0)
                    || components.iter().any(|(w, _)| *w < 0.0 || !w.is_finite())
                {
                    return invalid(
                        "weights",
                        total,
                        "mixture needs non-negative weights with positive total",
                    );
                }
                for (_, component) in components {
                    component.validate()?;
                }
            }
        }
        Ok(())
    }

    /// Builds the executable distribution, validating parameters.
    pub fn build(&self) -> Result<Box<dyn FanoutDistribution>, ModelError> {
        self.validate()?;
        Ok(match self {
            FanoutSpec::Poisson { mean } => Box::new(PoissonFanout::new(*mean)),
            FanoutSpec::Fixed { fanout } => Box::new(FixedFanout::new(*fanout)),
            FanoutSpec::Binomial { m, p } => Box::new(BinomialFanout::new(*m, *p)),
            FanoutSpec::Geometric { p } => Box::new(GeometricFanout::new(*p)),
            FanoutSpec::Uniform { lo, hi } => Box::new(UniformFanout::new(*lo, *hi)),
            FanoutSpec::PowerLaw { alpha, kmin, kmax } => {
                Box::new(PowerLawFanout::new(*alpha, *kmin, *kmax))
            }
            FanoutSpec::Empirical { weights } => Box::new(EmpiricalFanout::new(weights)),
            FanoutSpec::Mixture { components } => {
                let mut built = Vec::with_capacity(components.len());
                for (w, c) in components {
                    built.push((*w, c.build()?));
                }
                Box::new(MixtureFanout::new(built))
            }
        })
    }

    /// Mean fanout of the described distribution.
    pub fn mean(&self) -> Result<f64, ModelError> {
        Ok(self.build()?.mean())
    }

    /// Human-readable label, formatted from the spec data (same shapes
    /// as the built distributions' labels, but without constructing
    /// samplers).
    pub fn label(&self) -> String {
        match self {
            FanoutSpec::Poisson { mean } => format!("Po({mean})"),
            FanoutSpec::Fixed { fanout } => format!("Fixed({fanout})"),
            FanoutSpec::Binomial { m, p } => format!("Bin({m}, {p})"),
            FanoutSpec::Geometric { p } => format!("Geom(p={p})"),
            FanoutSpec::Uniform { lo, hi } => format!("U[{lo}, {hi}]"),
            FanoutSpec::PowerLaw { alpha, kmin, kmax } => {
                format!("PL(α={alpha}, [{kmin}, {kmax}])")
            }
            FanoutSpec::Empirical { weights } => format!("Empirical({} outcomes)", weights.len()),
            FanoutSpec::Mixture { components } => {
                let total: f64 = components.iter().map(|(w, _)| *w).sum();
                let parts: Vec<String> = components
                    .iter()
                    .map(|(w, c)| {
                        let norm = if total > 0.0 { w / total } else { *w };
                        format!("{:.2}·{}", norm, c.label())
                    })
                    .collect();
                format!("Mix[{}]", parts.join(" + "))
            }
        }
    }
}

/// Data description of the failure model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FailureSpec {
    /// Nobody fails (`q = 1`).
    None,
    /// The paper's model: each non-source member independently stays up
    /// with probability `q` (fail-stop crash with probability `1 − q`
    /// before the execution).
    Random {
        /// Nonfailed member ratio `q ∈ (0, 1]`.
        q: f64,
    },
    /// Explicit crash schedule: `(time_ns, member)` pairs. Only timed
    /// backends (netsim) can honor this; the analytic and graph layers
    /// return [`ModelError::Unsupported`].
    Schedule {
        /// `(simulated time in ns, member id)` crash events.
        crashes: Vec<(u64, u32)>,
    },
}

impl FailureSpec {
    /// The effective nonfailed ratio `q`: 1 for `None`, `q` for
    /// `Random`; `None` for schedules (not expressible as a ratio).
    pub fn ratio(&self) -> Option<f64> {
        match self {
            FailureSpec::None => Some(1.0),
            FailureSpec::Random { q } => Some(*q),
            FailureSpec::Schedule { .. } => None,
        }
    }
}

/// Data description of the membership service gossip targets are drawn
/// from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MembershipSpec {
    /// Everyone knows everyone — the paper's analytical assumption.
    Full,
    /// SCAMP-style partial views with redundancy parameter `c`
    /// (expected view size ≈ `(c+1)·ln n`).
    Scamp {
        /// SCAMP redundancy parameter.
        c: usize,
    },
}

/// Data description of the protocol variant under evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolSpec {
    /// The paper's Fig. 1 algorithm: push to `F ~ P` targets on first
    /// receipt.
    Push,
    /// Push plus periodic anti-entropy pulls (Demers-style).
    PushPull,
    /// Forward to the whole view on first receipt (upper-bound
    /// baseline).
    Flood,
}

/// Data description of per-message network latency (netsim backend).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum LatencySpec {
    /// Every message takes exactly `ms` milliseconds.
    ConstantMillis {
        /// Latency in milliseconds.
        ms: u64,
    },
    /// Uniform in `[lo_ms, hi_ms]`.
    UniformMillis {
        /// Minimum latency in milliseconds.
        lo_ms: u64,
        /// Maximum latency in milliseconds.
        hi_ms: u64,
    },
    /// Exponential with the given mean (memoryless WAN approximation).
    ExponentialMillis {
        /// Mean latency in milliseconds.
        mean_ms: u64,
    },
}

impl Default for LatencySpec {
    fn default() -> Self {
        LatencySpec::ConstantMillis { ms: 1 }
    }
}

/// Execution knobs for the live runtime backend (`gossip-runtime`) —
/// the one layer that spawns real threads and moves real messages, so
/// it needs resource bounds the model layers do not.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuntimeSpec {
    /// Upper bound on OS threads one runtime execution may spawn. Node
    /// actors are multiplexed over this many shard threads when `n`
    /// exceeds it; `0` (default) picks an automatic bound from the
    /// machine's parallelism (and a nested run inside a `SweepGrid`
    /// sweep always collapses to one shard, so sweeps cannot
    /// oversubscribe).
    pub max_threads: usize,
    /// Real-time pacing of [`LatencySpec`]: microseconds of wall-clock
    /// delay applied per millisecond of virtual latency. `0` (default)
    /// disables pacing — the virtual clock still stamps every message,
    /// but nothing sleeps. Capped at 1000 (real time) by validation.
    pub pacing_micros_per_milli: u64,
    /// Quiescence watchdog for one live execution, in wall-clock
    /// seconds: a replication still in flight after this long is
    /// aborted and reported as `NoConvergence`. `0` (default) picks the
    /// historical 30 s bound; long streams at high k legitimately need
    /// more. Capped at 3600 by validation.
    pub watchdog_secs: u64,
}

impl RuntimeSpec {
    /// Seconds of the execution watchdog: the configured value, or the
    /// historical 30 s default when the knob is 0.
    pub fn watchdog_or_default(&self) -> u64 {
        if self.watchdog_secs == 0 {
            30
        } else {
            self.watchdog_secs
        }
    }
}

/// Group size at which [`EngineSpec::Auto`] switches the Monte-Carlo
/// backends onto the flat struct-of-arrays engine. Below it the classic
/// per-node paths run (byte-identical Reports with prior releases);
/// at or above it the per-replication allocation cost of the classic
/// paths dominates wall-clock and the flat engine takes over.
pub const FLAT_ENGINE_AUTO_THRESHOLD: usize = 65_536;

/// Which Monte-Carlo evaluation engine the simulation backends use.
///
/// The flat engine keeps all per-replication state in struct-of-arrays
/// form — u64-word bitset frontiers, one shared overlay CSR, alias-table
/// fanout draws, arena-reused scratch — and is the only way to evaluate
/// Fig. 4 curves at n = 10⁶⁺ in seconds. It draws from its own seed
/// streams, so its Reports agree with the classic engines statistically
/// (within Monte-Carlo tolerance) rather than bit-for-bit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineSpec {
    /// Classic below [`FLAT_ENGINE_AUTO_THRESHOLD`] members, flat at or
    /// above it (the default).
    #[default]
    Auto,
    /// Always the classic per-node engines, at any size.
    Classic,
    /// Always the flat engine; backends that cannot honor it (the
    /// event-driven simulator, the live runtime) refuse with a typed
    /// `Unsupported` error instead of silently falling back.
    Flat,
}

impl EngineSpec {
    /// Whether a group of `n` members should run on the flat engine.
    pub fn flat_for(self, n: usize) -> bool {
        match self {
            EngineSpec::Auto => n >= FLAT_ENGINE_AUTO_THRESHOLD,
            EngineSpec::Classic => false,
            EngineSpec::Flat => true,
        }
    }
}

/// A declarative description of one evaluation: *what* to gossip-model,
/// independent of *which layer* evaluates it.
///
/// Construct with [`Scenario::new`] and the `with_*` builders; evaluate
/// with any [`Backend`]; fan over grids with [`SweepGrid`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Group size `n ≥ 2`.
    pub n: usize,
    /// Fanout distribution `P`.
    pub fanout: FanoutSpec,
    /// Failure model (default: none).
    pub failure: FailureSpec,
    /// Independent per-message loss probability in `[0, 1)` (default 0).
    pub loss: f64,
    /// Per-message latency model (timed backends only).
    pub latency: LatencySpec,
    /// Membership service (default: full view, the paper's assumption).
    pub membership: MembershipSpec,
    /// Overlay topology and peer-selection policy (default: complete
    /// overlay with uniform global selection — the paper's model; every
    /// backend treats the default as "no structured topology").
    pub topology: TopologySpec,
    /// Fault families beyond the paper's model (default: none — a
    /// strict passthrough; see [`FaultSpec`]): membership churn,
    /// correlated zone failures, Gilbert-Elliott bursty loss, and
    /// adversarial link blocking.
    pub faults: FaultSpec,
    /// Sustained multi-message traffic (default: `None` — the classic
    /// single-message execution, a strict byte-identical passthrough).
    /// When set, the source streams k concurrent messages under the
    /// spec's injection plan, bandwidth cap, bounded send queue, and
    /// batching policy; backends fill [`Report::traffic`].
    pub traffic: Option<TrafficSpec>,
    /// Protocol variant (default: the paper's push).
    pub protocol: ProtocolSpec,
    /// Live-runtime execution knobs (thread cap, latency pacing).
    pub runtime: RuntimeSpec,
    /// Monte-Carlo engine choice (default: [`EngineSpec::Auto`] —
    /// classic per-node paths at small `n`, flat struct-of-arrays above
    /// [`FLAT_ENGINE_AUTO_THRESHOLD`]).
    pub engine: EngineSpec,
    /// Monte-Carlo replications for simulation backends (paper: 20).
    pub replications: usize,
    /// Execution count `t` for the success-of-gossiping calculus
    /// (Eqs. 5–6); reports fill `success_within_t` for this `t`.
    pub executions: u32,
    /// Base seed; all backend randomness derives from it.
    pub seed: u64,
}

impl Scenario {
    /// A scenario with the paper's defaults: no failures, no loss, 1 ms
    /// constant latency, full membership, push gossip, 20 replications,
    /// `t = 1`.
    pub fn new(n: usize, fanout: FanoutSpec) -> Self {
        Scenario {
            n,
            fanout,
            failure: FailureSpec::None,
            loss: 0.0,
            latency: LatencySpec::default(),
            membership: MembershipSpec::Full,
            topology: TopologySpec::default(),
            faults: FaultSpec::default(),
            traffic: None,
            protocol: ProtocolSpec::Push,
            runtime: RuntimeSpec::default(),
            engine: EngineSpec::default(),
            replications: 20,
            executions: 1,
            seed: 0x1CC_2008, // "ICPP 2008"
        }
    }

    /// Sets the paper's random fail-stop model with nonfailed ratio `q`.
    pub fn with_failure_ratio(mut self, q: f64) -> Self {
        self.failure = FailureSpec::Random { q };
        self
    }

    /// Sets the failure model.
    pub fn with_failure(mut self, failure: FailureSpec) -> Self {
        self.failure = failure;
        self
    }

    /// Sets the per-message loss probability.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Sets the latency model.
    pub fn with_latency(mut self, latency: LatencySpec) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the membership service.
    pub fn with_membership(mut self, membership: MembershipSpec) -> Self {
        self.membership = membership;
        self
    }

    /// Sets the overlay topology and peer-selection policy.
    pub fn with_topology(mut self, topology: TopologySpec) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the fault families riding on this scenario.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the sustained multi-message traffic workload.
    pub fn with_traffic(mut self, traffic: TrafficSpec) -> Self {
        self.traffic = Some(traffic);
        self
    }

    /// Sets the protocol variant.
    pub fn with_protocol(mut self, protocol: ProtocolSpec) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the live-runtime execution knobs.
    pub fn with_runtime(mut self, runtime: RuntimeSpec) -> Self {
        self.runtime = runtime;
        self
    }

    /// Sets the Monte-Carlo engine choice.
    pub fn with_engine(mut self, engine: EngineSpec) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the Monte-Carlo replication count.
    pub fn with_replications(mut self, replications: usize) -> Self {
        self.replications = replications;
        self
    }

    /// Sets the execution count `t` for the success calculus.
    pub fn with_executions(mut self, executions: u32) -> Self {
        self.executions = executions;
        self
    }

    /// Sets the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The effective nonfailed ratio, if the failure model has one.
    pub fn q(&self) -> Option<f64> {
        self.failure.ratio()
    }

    /// The topology label backends put in [`Report::topology`]: `None`
    /// for the paper's default (complete overlay, uniform selection),
    /// `Some(label)` for structured overlays.
    pub fn topology_label(&self) -> Option<String> {
        if self.topology.is_default() {
            None
        } else {
            Some(self.topology.label())
        }
    }

    /// The fault label backends put in [`Report::faults`]: `None` for
    /// the default (fault-free) spec, `Some(label)` otherwise.
    pub fn faults_label(&self) -> Option<String> {
        if self.faults.is_default() {
            None
        } else {
            Some(self.faults.label())
        }
    }

    /// The traffic label backends put in reports: `None` for the
    /// default single-message workload, `Some(label)` for streams.
    pub fn traffic_label(&self) -> Option<String> {
        self.traffic.as_ref().map(TrafficSpec::label)
    }

    /// Checks every parameter domain; backends call this first.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.n < 2 {
            return Err(ModelError::InvalidParameter {
                name: "n",
                value: self.n as f64,
                requirement: "group must have at least 2 members",
            });
        }
        // Node ids are u32 throughout the simulation layers (CSR
        // adjacency, stub lists, bitset frontiers); a group that cannot
        // index as u32 must be refused here, not narrowed silently.
        if self.n > u32::MAX as usize {
            return Err(ModelError::InvalidParameter {
                name: "n",
                value: self.n as f64,
                requirement: "group size must fit a u32 node id (n <= 2^32 - 1)",
            });
        }
        self.fanout.validate()?;
        match &self.failure {
            FailureSpec::None => {}
            FailureSpec::Random { q } => {
                if !(q.is_finite() && *q > 0.0 && *q <= 1.0) {
                    return Err(ModelError::InvalidParameter {
                        name: "q",
                        value: *q,
                        requirement: "nonfailed member ratio must lie in (0, 1]",
                    });
                }
            }
            FailureSpec::Schedule { crashes } => {
                if let Some(&(_, node)) = crashes.iter().find(|&&(_, node)| node as usize >= self.n)
                {
                    return Err(ModelError::InvalidParameter {
                        name: "crashes",
                        value: node as f64,
                        requirement: "crash schedule member ids must lie in [0, n)",
                    });
                }
            }
        }
        if let LatencySpec::UniformMillis { lo_ms, hi_ms } = self.latency {
            if lo_ms > hi_ms {
                return Err(ModelError::InvalidParameter {
                    name: "lo_ms",
                    value: lo_ms as f64,
                    requirement: "uniform latency needs lo_ms <= hi_ms",
                });
            }
        }
        if !(self.loss.is_finite() && (0.0..1.0).contains(&self.loss)) {
            return Err(ModelError::InvalidParameter {
                name: "loss",
                value: self.loss,
                requirement: "message loss probability must lie in [0, 1)",
            });
        }
        // Topology parameters are validated by the topology crate; its
        // error type is field-compatible with `InvalidParameter`, so the
        // mapping is lossless.
        if let Err(TopologyError {
            name,
            value,
            requirement,
        }) = self.topology.validate(self.n)
        {
            return Err(ModelError::InvalidParameter {
                name,
                value,
                requirement,
            });
        }
        // Fault parameters are validated by the faults crate; its error
        // type is field-compatible too, so the mapping is lossless.
        if let Err(FaultError {
            name,
            value,
            requirement,
        }) = self.faults.validate(self.n, &self.topology)
        {
            return Err(ModelError::InvalidParameter {
                name,
                value,
                requirement,
            });
        }
        // Bursty loss *replaces* the i.i.d. loss channel; letting both
        // run would double-count drops, so the combination is rejected
        // here (the faults crate never sees the scenario's loss knob).
        if self.faults.bursty_loss.is_some() && self.loss > 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "loss",
                value: self.loss,
                requirement: "bursty (Gilbert-Elliott) loss replaces i.i.d. loss; set loss = 0",
            });
        }
        // Traffic parameters are validated by the traffic crate; its
        // error type is field-compatible as well, so the mapping is
        // lossless.
        if let Some(traffic) = &self.traffic {
            if let Err(TrafficError {
                name,
                value,
                requirement,
            }) = traffic.validate()
            {
                return Err(ModelError::InvalidParameter {
                    name,
                    value,
                    requirement,
                });
            }
            // The flat struct-of-arrays engine has no multi-message
            // kernel: streams run on the round-synchronous stream
            // engine instead, so an explicit Flat request cannot be
            // honored and must be refused here, not silently rerouted.
            if self.engine == EngineSpec::Flat {
                return Err(ModelError::InvalidParameter {
                    name: "engine",
                    value: traffic.messages as f64,
                    requirement: "traffic streams have no flat-engine kernel; use Auto or Classic",
                });
            }
        }
        if self.replications == 0 {
            return Err(ModelError::InvalidParameter {
                name: "replications",
                value: 0.0,
                requirement: "need at least one replication",
            });
        }
        // Runtime knobs: the live backend spawns threads and sleeps for
        // real, so absurd values must fail fast here, before anything
        // is spawned.
        if self.runtime.max_threads > 4096 {
            return Err(ModelError::InvalidParameter {
                name: "max_threads",
                value: self.runtime.max_threads as f64,
                requirement: "runtime thread cap must be at most 4096 (0 = auto)",
            });
        }
        if self.runtime.pacing_micros_per_milli > 1000 {
            return Err(ModelError::InvalidParameter {
                name: "pacing_micros_per_milli",
                value: self.runtime.pacing_micros_per_milli as f64,
                requirement: "latency pacing is capped at 1000 µs/ms (real time)",
            });
        }
        if self.runtime.watchdog_secs > 3600 {
            return Err(ModelError::InvalidParameter {
                name: "watchdog_secs",
                value: self.runtime.watchdog_secs as f64,
                requirement: "the quiescence watchdog is capped at 3600 s (0 = the 30 s default)",
            });
        }
        Ok(())
    }

    /// One-line description, e.g. `n=1000 Po(4) q=0.9 loss=0`.
    pub fn label(&self) -> String {
        let q = match self.q() {
            Some(q) => format!("q={q}"),
            None => String::from("q=scheduled"),
        };
        let mut label = format!("n={} {} {q}", self.n, self.fanout.label());
        if self.loss > 0.0 {
            label.push_str(&format!(" loss={}", self.loss));
        }
        if let MembershipSpec::Scamp { c } = self.membership {
            label.push_str(&format!(" scamp(c={c})"));
        }
        if let Some(topology) = self.topology_label() {
            label.push_str(&format!(" {topology}"));
        }
        if let Some(faults) = self.faults_label() {
            label.push_str(&format!(" {faults}"));
        }
        if let Some(traffic) = self.traffic_label() {
            label.push_str(&format!(" {traffic}"));
        }
        match self.protocol {
            ProtocolSpec::Push => {}
            ProtocolSpec::PushPull => label.push_str(" push-pull"),
            ProtocolSpec::Flood => label.push_str(" flood"),
        }
        label
    }
}

/// What every evaluation layer reports for a [`Scenario`], in the same
/// units, so backends are directly comparable.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Name of the backend that produced this report.
    pub backend: String,
    /// Label of the evaluated scenario.
    pub scenario: String,
    /// Replications actually aggregated (1 for the analytic backend).
    pub replications: usize,
    /// Reliability `R(q, P)`: expected fraction of nonfailed members
    /// reached in one execution, conditioned on take-off (the giant
    /// component the paper's curves plot).
    pub reliability: f64,
    /// Standard error of the reliability estimate (0 for analytic).
    pub reliability_std_error: f64,
    /// 95% confidence interval of the reliability estimate (degenerate
    /// for the analytic backend).
    pub reliability_ci95: (f64, f64),
    /// Unconditional mean reliability over *all* replications, fizzled
    /// executions included (drops toward `R²` at moderate reliability);
    /// `None` where the layer has no execution dynamics.
    pub reliability_raw: Option<f64>,
    /// Critical nonfailed ratio `q_c` of the fanout distribution
    /// (Eq. 3); `None` when the distribution never percolates.
    pub critical_q: Option<f64>,
    /// Fraction of executions that took off (escaped the source's
    /// neighbourhood); `None` for the analytic backend.
    pub takeoff_rate: Option<f64>,
    /// Mean rounds (relay hops) to quiescence among take-off
    /// executions; `None` where the layer is untimed.
    pub rounds: Option<f64>,
    /// Mean messages sent per nonfailed member per execution.
    pub messages_per_member: Option<f64>,
    /// Mean simulated seconds to dissemination quiescence (timed
    /// backends only).
    pub quiescence_secs: Option<f64>,
    /// Transport the live runtime backend moved messages over
    /// (`"channel"` or `"tcp"`); `None` for every model layer.
    pub transport: Option<String>,
    /// Overlay topology and peer-selection policy the scenario gossiped
    /// over, e.g. `"ring(s=2000)/neigh"`; `None` for the paper's
    /// default (complete overlay, uniform selection).
    pub topology: Option<String>,
    /// Fault families the scenario was evaluated under, e.g.
    /// `"churn(j=10,l=10,h=200ms)"`; `None` for the fault-free default.
    pub faults: Option<String>,
    /// Mean messages lost in transit per execution — injected loss plus
    /// sends to crashed peers (live runtime backend only).
    pub messages_lost: Option<f64>,
    /// The §4.2 success calculus applied to this backend's reliability:
    /// `1 − (1 − R)^t` for the scenario's `t = executions` (Eq. 5).
    pub success_within_t: f64,
    /// Stream results when the scenario carries a [`TrafficSpec`]:
    /// per-message reliability min/mean, sustained messages/sec, and
    /// delivery-latency percentiles in rounds. `None` (serialized as
    /// `"traffic":null`) for the classic single-message workload —
    /// declared last so prior reports differ only by this trailing
    /// field.
    pub traffic: Option<TrafficReport>,
}

impl Report {
    /// Half-width of the 95% confidence interval.
    pub fn ci_half_width(&self) -> f64 {
        (self.reliability_ci95.1 - self.reliability_ci95.0) / 2.0
    }
}

/// An evaluation layer: anything that can answer a [`Scenario`] with a
/// [`Report`]. Object-safe — backends are boxed and listed.
pub trait Backend: Send + Sync {
    /// Short stable name, e.g. `"analytic"`.
    fn name(&self) -> &'static str;

    /// Evaluates the scenario.
    fn evaluate(&self, scenario: &Scenario) -> Result<Report, ModelError>;
}

impl<B: Backend + ?Sized> Backend for &B {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn evaluate(&self, scenario: &Scenario) -> Result<Report, ModelError> {
        (**self).evaluate(scenario)
    }
}

impl<B: Backend + ?Sized> Backend for Box<B> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn evaluate(&self, scenario: &Scenario) -> Result<Report, ModelError> {
        (**self).evaluate(scenario)
    }
}

/// The generating-function layer: site percolation for crashes
/// (Eqs. 1–4, 10–11) joined with bond percolation for loss, plus the
/// Eq. 5 success calculus. Exact (no Monte-Carlo noise) and fast.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalyticBackend;

impl Backend for AnalyticBackend {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn evaluate(&self, scenario: &Scenario) -> Result<Report, ModelError> {
        scenario.validate()?;
        let q = scenario.q().ok_or(ModelError::Unsupported {
            backend: "analytic",
            what: "crash schedules (the generating-function model is untimed)",
        })?;
        if scenario.membership != MembershipSpec::Full {
            return Err(ModelError::Unsupported {
                backend: "analytic",
                what: "partial-view membership (the model assumes uniform target selection)",
            });
        }
        if !scenario.topology.is_default() {
            return Err(ModelError::Unsupported {
                backend: "analytic",
                what:
                    "structured overlays (the generating-function model assumes the complete graph)",
            });
        }
        // Fault families either reduce to the closed forms (no-op, or
        // extra i.i.d. loss folding into the bond-percolation channel)
        // or are declined with a typed error.
        let loss = match scenario.faults.reduce() {
            FaultReduction::Noop => scenario.loss,
            FaultReduction::ExtraIidLoss(extra) => 1.0 - (1.0 - scenario.loss) * (1.0 - extra),
            FaultReduction::Unsupported(what) => {
                return Err(ModelError::Unsupported {
                    backend: "analytic",
                    what,
                })
            }
        };
        let dist = scenario.fanout.build()?;
        let reliability = match scenario.protocol {
            // Site + bond percolation; loss = 0 reduces to the paper's
            // crash-only model.
            ProtocolSpec::Push => LossyGossip::new(&dist, q, loss)?.reliability()?,
            // Pulls eventually reach every nonfailed member that the
            // push phase's giant component can reach and every member
            // reaches *into* — in the analytic limit anti-entropy
            // closes the gap to the full nonfailed set whenever the
            // push phase percolates at all.
            ProtocolSpec::PushPull => {
                let push = LossyGossip::new(&dist, q, loss)?.reliability()?;
                if push > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            // Flooding a full view is all-to-all: delivery fails only
            // if every copy to a member is lost, which for n → ∞ has
            // probability 0 at loss < 1.
            ProtocolSpec::Flood => 1.0,
        };
        let critical_q = SitePercolation::new(&dist, q)?.critical_q();
        // Expected message cost per nonfailed member: every reached
        // member relays once — to E[F] targets under push, to its whole
        // view under flooding. Push-pull adds pull probes the analytic
        // layer does not model, so no figure is reported for it.
        let messages_per_member = match scenario.protocol {
            ProtocolSpec::Push => Some(reliability * dist.mean()),
            ProtocolSpec::Flood => Some(reliability * (scenario.n as f64 - 1.0)),
            ProtocolSpec::PushPull => None,
        };
        // Streams: when the offered load k·E[F] fits under the per-node
        // bandwidth cap the k messages never contend, so the stream is
        // k independent copies of the single-message process and every
        // message sees the same closed-form reliability by symmetry.
        // Contended streams couple messages through queue overflow —
        // no closed form exists, decline to a simulation backend.
        let traffic = match &scenario.traffic {
            None => None,
            Some(spec) => {
                let offered = spec.messages as f64 * dist.mean();
                if spec.bandwidth.is_some_and(|b| offered > b as f64) {
                    return Err(ModelError::Unsupported {
                        backend: "analytic",
                        what: "contended traffic (offered load k·E[F] exceeds the bandwidth \
                               cap; queue coupling has no closed form — use a simulation \
                               backend)",
                    });
                }
                Some(TrafficReport {
                    messages: spec.messages,
                    reliability_mean: reliability,
                    reliability_min: reliability,
                    messages_per_sec: None,
                    latency_rounds_p50: None,
                    latency_rounds_p90: None,
                    latency_rounds_p99: None,
                    copies_sent: None,
                    copies_dropped: None,
                    copies_lost: None,
                    batched: spec.batched(),
                })
            }
        };
        Ok(Report {
            backend: self.name().to_string(),
            scenario: scenario.label(),
            replications: 1,
            reliability,
            reliability_std_error: 0.0,
            reliability_ci95: (reliability, reliability),
            reliability_raw: None,
            critical_q,
            takeoff_rate: None,
            rounds: None,
            messages_per_member,
            quiescence_secs: None,
            transport: None,
            topology: None,
            faults: scenario.faults_label(),
            messages_lost: None,
            success_within_t: success::success_probability(reliability, scenario.executions),
            traffic,
        })
    }
}

/// One evaluated cell of a [`SweepGrid`].
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// The scenario of this cell (with its derived per-cell seed).
    pub scenario: Scenario,
    /// The backend's answer.
    pub report: Result<Report, ModelError>,
}

/// A cartesian scenario grid: a base [`Scenario`] plus axes to vary.
///
/// Cell order is row-major in axis declaration order (fanouts ×
/// failure ratios × losses), and each cell's seed derives from
/// `(base.seed, cell index)` via SplitMix64 — results are a pure
/// function of the base seed, independent of thread count.
#[derive(Clone, Debug)]
pub struct SweepGrid {
    base: Scenario,
    fanouts: Vec<FanoutSpec>,
    qs: Vec<f64>,
    losses: Vec<f64>,
}

impl SweepGrid {
    /// A grid over the single base scenario (add axes with `over_*`).
    pub fn new(base: Scenario) -> Self {
        SweepGrid {
            base,
            fanouts: Vec::new(),
            qs: Vec::new(),
            losses: Vec::new(),
        }
    }

    /// Varies the fanout specification.
    pub fn over_fanouts(mut self, fanouts: impl IntoIterator<Item = FanoutSpec>) -> Self {
        self.fanouts = fanouts.into_iter().collect();
        self
    }

    /// Varies Poisson mean fanout (the paper's Figs. 2, 4, 5 axis).
    pub fn over_poisson_means(self, means: &[f64]) -> Self {
        self.over_fanouts(means.iter().map(|&z| FanoutSpec::poisson(z)))
    }

    /// Varies the nonfailed ratio `q`.
    pub fn over_failure_ratios(mut self, qs: &[f64]) -> Self {
        self.qs = qs.to_vec();
        self
    }

    /// Varies the message loss probability.
    pub fn over_losses(mut self, losses: &[f64]) -> Self {
        self.losses = losses.to_vec();
        self
    }

    /// Materializes the grid cells in deterministic order, with derived
    /// per-cell seeds.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let fanouts: Vec<FanoutSpec> = if self.fanouts.is_empty() {
            vec![self.base.fanout.clone()]
        } else {
            self.fanouts.clone()
        };
        let qs: Vec<FailureSpec> = if self.qs.is_empty() {
            vec![self.base.failure.clone()]
        } else {
            self.qs.iter().map(|&q| FailureSpec::Random { q }).collect()
        };
        let losses: Vec<f64> = if self.losses.is_empty() {
            vec![self.base.loss]
        } else {
            self.losses.clone()
        };
        let mut cells = Vec::with_capacity(fanouts.len() * qs.len() * losses.len());
        for fanout in &fanouts {
            for failure in &qs {
                for &loss in &losses {
                    let index = cells.len() as u64;
                    let mut cell = self.base.clone();
                    cell.fanout = fanout.clone();
                    cell.failure = failure.clone();
                    cell.loss = loss;
                    cell.seed = SplitMix64::derive(self.base.seed, index);
                    cells.push(cell);
                }
            }
        }
        cells
    }

    /// Number of cells in the grid.
    pub fn len(&self) -> usize {
        let f = self.fanouts.len().max(1);
        let q = self.qs.len().max(1);
        let l = self.losses.len().max(1);
        f * q * l
    }

    /// True when the grid is empty (never: a grid has at least the base
    /// cell).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Evaluates every cell with `backend`, fanning over
    /// `gossip_stats::parallel` worker threads. Deterministic: cell
    /// seeds are fixed by [`SweepGrid::scenarios`], and results return
    /// in grid order regardless of scheduling.
    pub fn run(&self, backend: &dyn Backend) -> Vec<SweepCell> {
        let cells = self.scenarios();
        let reports = parallel_map(cells.len(), |i| backend.evaluate(&cells[i]));
        cells
            .into_iter()
            .zip(reports)
            .map(|(scenario, report)| SweepCell { scenario, report })
            .collect()
    }

    /// As [`SweepGrid::run`] for several backends: returns one
    /// `Vec<SweepCell>` per backend, in backend order.
    pub fn run_all(&self, backends: &[&dyn Backend]) -> Vec<Vec<SweepCell>> {
        backends.iter().map(|b| self.run(*b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn headline() -> Scenario {
        Scenario::new(1000, FanoutSpec::poisson(4.0)).with_failure_ratio(0.9)
    }

    #[test]
    fn analytic_headline_point() {
        let report = AnalyticBackend.evaluate(&headline()).unwrap();
        assert!((report.reliability - 0.969_506).abs() < 1e-5);
        assert!((report.critical_q.unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(report.replications, 1);
        assert_eq!(report.reliability_std_error, 0.0);
        // Eq. 5 at t = 1 is just R.
        assert!((report.success_within_t - report.reliability).abs() < 1e-12);
    }

    #[test]
    fn analytic_success_calculus() {
        let report = AnalyticBackend
            .evaluate(&headline().with_executions(2))
            .unwrap();
        let r = report.reliability;
        assert!((report.success_within_t - (1.0 - (1.0 - r) * (1.0 - r))).abs() < 1e-12);
    }

    #[test]
    fn analytic_loss_folds_into_product() {
        // Po(6) with 25% loss ≡ Po(4.5) lossless (§ loss docs).
        let lossy = AnalyticBackend
            .evaluate(
                &Scenario::new(1000, FanoutSpec::poisson(6.0))
                    .with_failure_ratio(0.9)
                    .with_loss(0.25),
            )
            .unwrap();
        let thinned = AnalyticBackend
            .evaluate(&Scenario::new(1000, FanoutSpec::poisson(4.5)).with_failure_ratio(0.9))
            .unwrap();
        assert!((lossy.reliability - thinned.reliability).abs() < 1e-9);
    }

    #[test]
    fn analytic_rejects_unsupported() {
        let scamp = headline().with_membership(MembershipSpec::Scamp { c: 2 });
        assert!(matches!(
            AnalyticBackend.evaluate(&scamp),
            Err(ModelError::Unsupported { .. })
        ));
        let scheduled = headline().with_failure(FailureSpec::Schedule {
            crashes: vec![(1_000_000, 3)],
        });
        assert!(matches!(
            AnalyticBackend.evaluate(&scheduled),
            Err(ModelError::Unsupported { .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        assert!(Scenario::new(1, FanoutSpec::poisson(4.0))
            .validate()
            .is_err());
        assert!(headline().with_loss(1.0).validate().is_err());
        assert!(headline().with_replications(0).validate().is_err());
        assert!(Scenario::new(100, FanoutSpec::poisson(4.0))
            .with_failure_ratio(0.0)
            .validate()
            .is_err());
        assert!(Scenario::new(100, FanoutSpec::Geometric { p: 0.0 })
            .validate()
            .is_err());
        assert!(
            Scenario::new(100, FanoutSpec::Empirical { weights: vec![] })
                .validate()
                .is_err()
        );
    }

    #[test]
    fn validate_rejects_bad_runtime_knobs() {
        // The runtime backend spawns real threads and sleeps for real:
        // a bogus cap or slower-than-real-time pacing must fail fast.
        let capped = headline().with_runtime(RuntimeSpec {
            max_threads: 100_000,
            pacing_micros_per_milli: 0,
            watchdog_secs: 0,
        });
        assert!(matches!(
            capped.validate(),
            Err(ModelError::InvalidParameter {
                name: "max_threads",
                ..
            })
        ));
        let paced = headline().with_runtime(RuntimeSpec {
            max_threads: 0,
            pacing_micros_per_milli: 5000,
            watchdog_secs: 0,
        });
        assert!(matches!(
            paced.validate(),
            Err(ModelError::InvalidParameter {
                name: "pacing_micros_per_milli",
                ..
            })
        ));
        // The watchdog knob is bounded too: nobody waits an hour-plus
        // on a wedged replication.
        let waited = headline().with_runtime(RuntimeSpec {
            max_threads: 0,
            pacing_micros_per_milli: 0,
            watchdog_secs: 100_000,
        });
        assert!(matches!(
            waited.validate(),
            Err(ModelError::InvalidParameter {
                name: "watchdog_secs",
                ..
            })
        ));
        assert_eq!(RuntimeSpec::default().watchdog_or_default(), 30);
        // The defaults are always valid.
        assert!(headline()
            .with_runtime(RuntimeSpec::default())
            .validate()
            .is_ok());
    }

    #[test]
    fn validate_rejects_out_of_range_schedule_and_latency() {
        // Crash schedules naming members outside [0, n) must error, not
        // panic inside the simulator.
        let scheduled =
            Scenario::new(100, FanoutSpec::poisson(4.0)).with_failure(FailureSpec::Schedule {
                crashes: vec![(0, 500)],
            });
        assert!(matches!(
            scheduled.validate(),
            Err(ModelError::InvalidParameter {
                name: "crashes",
                ..
            })
        ));
        // Inverted uniform latency bounds must error, not wrap.
        let inverted = Scenario::new(100, FanoutSpec::poisson(4.0))
            .with_latency(LatencySpec::UniformMillis { lo_ms: 5, hi_ms: 2 });
        assert!(matches!(
            inverted.validate(),
            Err(ModelError::InvalidParameter { name: "lo_ms", .. })
        ));
    }

    #[test]
    fn validate_rejects_malformed_topologies() {
        use gossip_topology::OverlaySpec;
        // k >= n.
        let fat = Scenario::new(50, FanoutSpec::poisson(4.0))
            .with_topology(TopologySpec::new(OverlaySpec::KRegular { k: 50 }));
        assert!(matches!(
            fat.validate(),
            Err(ModelError::InvalidParameter { name: "k", .. })
        ));
        // beta outside [0, 1].
        let skewed = Scenario::new(100, FanoutSpec::poisson(4.0)).with_topology(TopologySpec::new(
            OverlaySpec::WattsStrogatz { k: 4, beta: 1.5 },
        ));
        assert!(matches!(
            skewed.validate(),
            Err(ModelError::InvalidParameter { name: "beta", .. })
        ));
        // Zero zones.
        let zoneless = Scenario::new(100, FanoutSpec::poisson(4.0)).with_topology(
            TopologySpec::new(OverlaySpec::Clustered {
                zones: 0,
                intra: 2,
                inter: 1,
            }),
        );
        assert!(matches!(
            zoneless.validate(),
            Err(ModelError::InvalidParameter { name: "zones", .. })
        ));
        // Odd degree sum in the configuration-model family.
        let odd = Scenario::new(51, FanoutSpec::poisson(4.0))
            .with_topology(TopologySpec::new(OverlaySpec::KRegular { k: 3 }));
        assert!(matches!(
            odd.validate(),
            Err(ModelError::InvalidParameter { name: "k", .. })
        ));
        // A well-formed structured topology passes.
        let fine = Scenario::new(100, FanoutSpec::poisson(4.0))
            .with_topology(TopologySpec::new(OverlaySpec::Ring { shortcuts: 40 }));
        assert!(fine.validate().is_ok());
    }

    #[test]
    fn analytic_rejects_structured_topology() {
        use gossip_topology::OverlaySpec;
        let structured =
            headline().with_topology(TopologySpec::new(OverlaySpec::Ring { shortcuts: 100 }));
        assert!(matches!(
            AnalyticBackend.evaluate(&structured),
            Err(ModelError::Unsupported { .. })
        ));
    }

    #[test]
    fn scenario_label_mentions_topology() {
        use gossip_topology::OverlaySpec;
        assert!(!headline().label().contains("complete"));
        let structured = headline().with_topology(TopologySpec::new(OverlaySpec::WattsStrogatz {
            k: 8,
            beta: 0.2,
        }));
        assert!(structured.label().contains("ws(k=8,beta=0.2)/neigh"));
        assert_eq!(
            structured.topology_label().as_deref(),
            Some("ws(k=8,beta=0.2)/neigh")
        );
        assert_eq!(headline().topology_label(), None);
    }

    #[test]
    fn analytic_flood_message_cost_is_view_sized() {
        let flood = headline().with_protocol(ProtocolSpec::Flood);
        let report = AnalyticBackend.evaluate(&flood).unwrap();
        // Every reached member forwards to its whole (n−1)-entry view.
        assert!((report.messages_per_member.unwrap() - 999.0).abs() < 1e-9);
        let pushpull = headline().with_protocol(ProtocolSpec::PushPull);
        assert_eq!(
            AnalyticBackend
                .evaluate(&pushpull)
                .unwrap()
                .messages_per_member,
            None,
            "pull traffic is not analytically modeled"
        );
    }

    #[test]
    fn fanout_spec_builds_all_families() {
        let specs = [
            FanoutSpec::poisson(4.0),
            FanoutSpec::fixed(3),
            FanoutSpec::Binomial { m: 10, p: 0.4 },
            FanoutSpec::geometric_with_mean(3.0),
            FanoutSpec::Uniform { lo: 2, hi: 6 },
            FanoutSpec::PowerLaw {
                alpha: 2.5,
                kmin: 1,
                kmax: 40,
            },
            FanoutSpec::Empirical {
                weights: vec![0.0, 0.3, 0.3, 0.4],
            },
            FanoutSpec::Mixture {
                components: vec![(0.8, FanoutSpec::fixed(2)), (0.2, FanoutSpec::poisson(8.0))],
            },
        ];
        for spec in &specs {
            let dist = spec.build().unwrap();
            assert!(dist.mean() >= 0.0, "{}", dist.label());
        }
        // Mixture mean is the weighted component mean.
        let mix = specs[7].mean().unwrap();
        assert!(
            (mix - (0.8 * 2.0 + 0.2 * 8.0)).abs() < 1e-9,
            "mix mean {mix}"
        );
    }

    #[test]
    fn sweep_grid_shape_and_determinism() {
        let grid = SweepGrid::new(headline())
            .over_poisson_means(&[2.0, 4.0])
            .over_failure_ratios(&[0.5, 0.7, 0.9]);
        assert_eq!(grid.len(), 6);
        let cells = grid.scenarios();
        assert_eq!(cells.len(), 6);
        // Distinct, deterministic per-cell seeds.
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.seed, SplitMix64::derive(headline().seed, i as u64));
        }
        let a = grid.run(&AnalyticBackend);
        let b = grid.run(&AnalyticBackend);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.report.as_ref().unwrap().reliability,
                y.report.as_ref().unwrap().reliability
            );
        }
        // Row-major order: the last cell is (z=4, q=0.9), the paper's
        // headline value.
        let last = a.last().unwrap().report.as_ref().unwrap();
        assert!((last.reliability - 0.969_506).abs() < 1e-5);
    }

    #[test]
    fn backend_is_object_safe() {
        let boxed: Box<dyn Backend> = Box::new(AnalyticBackend);
        assert_eq!(boxed.name(), "analytic");
        let report = boxed.evaluate(&headline()).unwrap();
        assert!(report.reliability > 0.9);
        // And references to trait objects still implement Backend.
        let by_ref: &dyn Backend = &boxed;
        assert_eq!(by_ref.name(), "analytic");
    }

    #[test]
    fn scenario_label_mentions_knobs() {
        let label = headline()
            .with_loss(0.1)
            .with_membership(MembershipSpec::Scamp { c: 2 })
            .with_protocol(ProtocolSpec::Flood)
            .label();
        assert!(label.contains("n=1000"));
        assert!(label.contains("q=0.9"));
        assert!(label.contains("loss=0.1"));
        assert!(label.contains("scamp"));
        assert!(label.contains("flood"));
    }

    #[test]
    fn analytic_folds_degenerate_bursty_loss_into_closed_form() {
        use gossip_faults::BurstySpec;
        // Equal-state GE loss at 0.25 is plain i.i.d. loss at 0.25:
        // Po(6) thinned by it must equal explicit loss = 0.25.
        let bursty = Scenario::new(1000, FanoutSpec::poisson(6.0))
            .with_failure_ratio(0.9)
            .with_faults(FaultSpec::none().with_bursty_loss(BurstySpec {
                p_gb: 0.2,
                p_bg: 0.3,
                loss_good: 0.25,
                loss_bad: 0.25,
            }));
        let explicit = Scenario::new(1000, FanoutSpec::poisson(6.0))
            .with_failure_ratio(0.9)
            .with_loss(0.25);
        let a = AnalyticBackend.evaluate(&bursty).unwrap();
        let b = AnalyticBackend.evaluate(&explicit).unwrap();
        assert!((a.reliability - b.reliability).abs() < 1e-12);
        assert_eq!(
            a.faults.as_deref(),
            Some("ge(pgb=0.2,pbg=0.3,lg=0.25,lb=0.25)")
        );
        assert_eq!(b.faults, None);
    }

    #[test]
    fn analytic_declines_nonreducible_faults() {
        use gossip_faults::{AdversaryStrategy, BurstySpec, ChurnSpec};
        let churned =
            headline().with_faults(FaultSpec::none().with_churn(ChurnSpec::symmetric(10.0, 200)));
        assert!(matches!(
            AnalyticBackend.evaluate(&churned),
            Err(ModelError::Unsupported {
                backend: "analytic",
                ..
            })
        ));
        let bursty = headline().with_faults(FaultSpec::none().with_bursty_loss(BurstySpec {
            p_gb: 0.05,
            p_bg: 0.15,
            loss_good: 0.0,
            loss_bad: 0.8,
        }));
        assert!(matches!(
            AnalyticBackend.evaluate(&bursty),
            Err(ModelError::Unsupported { .. })
        ));
        let blocked = headline()
            .with_faults(FaultSpec::none().with_adversary(999, AdversaryStrategy::WorstCase));
        assert!(matches!(
            AnalyticBackend.evaluate(&blocked),
            Err(ModelError::Unsupported { .. })
        ));
        // Zero-rate churn is a no-op: the closed form still applies.
        let idle =
            headline().with_faults(FaultSpec::none().with_churn(ChurnSpec::symmetric(0.0, 200)));
        let report = AnalyticBackend.evaluate(&idle).unwrap();
        assert!((report.reliability - 0.969_506).abs() < 1e-5);
    }

    #[test]
    fn validate_rejects_malformed_faults() {
        use gossip_faults::{BurstySpec, ChurnSpec};
        // Negative churn rate maps losslessly onto InvalidParameter.
        let churned = headline().with_faults(FaultSpec::none().with_churn(ChurnSpec {
            join_per_sec: -1.0,
            leave_per_sec: 0.0,
            horizon_ms: 100,
        }));
        assert!(matches!(
            churned.validate(),
            Err(ModelError::InvalidParameter {
                name: "join_per_sec",
                ..
            })
        ));
        // Zone failures need a Clustered overlay.
        let zoned = headline().with_faults(FaultSpec::none().with_zone_failure(vec![0], 10));
        assert!(matches!(
            zoned.validate(),
            Err(ModelError::InvalidParameter {
                name: "zone_failure",
                ..
            })
        ));
        // Bursty loss and i.i.d. loss are mutually exclusive.
        let doubled = headline()
            .with_loss(0.1)
            .with_faults(FaultSpec::none().with_bursty_loss(BurstySpec {
                p_gb: 0.05,
                p_bg: 0.15,
                loss_good: 0.0,
                loss_bad: 0.8,
            }));
        assert!(matches!(
            doubled.validate(),
            Err(ModelError::InvalidParameter { name: "loss", .. })
        ));
    }

    #[test]
    fn scenario_label_mentions_faults() {
        use gossip_faults::ChurnSpec;
        assert_eq!(headline().faults_label(), None);
        let churned =
            headline().with_faults(FaultSpec::none().with_churn(ChurnSpec::symmetric(10.0, 200)));
        assert!(churned.label().contains("churn(j=10,l=10,h=200ms)"));
        assert_eq!(
            churned.faults_label().as_deref(),
            Some("churn(j=10,l=10,h=200ms)")
        );
    }

    #[test]
    fn validate_rejects_malformed_traffic() {
        use gossip_traffic::ArrivalSpec;
        // Traffic errors map losslessly onto InvalidParameter.
        let cases = [
            (TrafficSpec::stream(0), "messages"),
            (TrafficSpec::stream(4).with_bandwidth(0), "bandwidth"),
            (
                TrafficSpec::stream(4).with_queue_capacity(0),
                "queue_capacity",
            ),
            (TrafficSpec::stream(4).with_piggyback(0), "frame_limit"),
            (
                TrafficSpec::stream(4).with_arrival(ArrivalSpec::Poisson {
                    rate_per_round: -0.5,
                }),
                "rate_per_round",
            ),
            (
                TrafficSpec::stream(4).with_arrival(ArrivalSpec::FixedInterval { every_rounds: 0 }),
                "every_rounds",
            ),
        ];
        for (spec, field) in cases {
            match headline().with_traffic(spec).validate() {
                Err(ModelError::InvalidParameter { name, .. }) => assert_eq!(name, field),
                other => panic!("expected InvalidParameter({field}), got {other:?}"),
            }
        }
        // Streams have no flat-engine kernel: an explicit Flat request
        // is refused up front.
        let flat = headline()
            .with_traffic(TrafficSpec::stream(4))
            .with_engine(EngineSpec::Flat);
        assert!(matches!(
            flat.validate(),
            Err(ModelError::InvalidParameter { name: "engine", .. })
        ));
        // Auto stays fine — streams run on the stream engine at any n.
        assert!(headline()
            .with_traffic(TrafficSpec::stream(4))
            .validate()
            .is_ok());
    }

    #[test]
    fn scenario_label_mentions_traffic() {
        assert_eq!(headline().traffic_label(), None);
        let streamed = headline().with_traffic(TrafficSpec::stream(16).with_bandwidth(4));
        assert!(streamed.label().contains("stream(k=16,B=4,q=1024)"));
    }

    #[test]
    fn analytic_reduces_uncontended_traffic_and_declines_contended() {
        // Uncapped (or roomy) bandwidth: k i.i.d. copies of the single
        // closed form — the headline reliability, per message.
        let uncontended = headline().with_traffic(TrafficSpec::stream(4).with_bandwidth(64));
        let report = AnalyticBackend.evaluate(&uncontended).unwrap();
        let traffic = report.traffic.expect("stream scenarios fill the section");
        assert_eq!(traffic.messages, 4);
        assert!((traffic.reliability_mean - report.reliability).abs() < 1e-12);
        assert!((traffic.reliability_min - report.reliability).abs() < 1e-12);
        assert_eq!(traffic.messages_per_sec, None, "analytic has no clock");
        // 4 messages × E[F]=4 > B=8: queue coupling, no closed form.
        let contended = headline().with_traffic(TrafficSpec::stream(4).with_bandwidth(8));
        assert!(matches!(
            AnalyticBackend.evaluate(&contended),
            Err(ModelError::Unsupported {
                backend: "analytic",
                ..
            })
        ));
    }

    #[test]
    fn scenario_and_report_round_trip_with_traffic() {
        use gossip_traffic::ArrivalSpec;
        let scenario = headline().with_traffic(
            TrafficSpec::stream(16)
                .with_bandwidth(4)
                .with_piggyback(8)
                .with_arrival(ArrivalSpec::Poisson {
                    rate_per_round: 0.5,
                }),
        );
        let json = serde::json::to_string(&scenario).unwrap();
        let back: Scenario = serde::json::from_str(&json).unwrap();
        assert_eq!(scenario, back);
        // Default scenarios serialize the field as null.
        let json = serde::json::to_string(&headline()).unwrap();
        assert!(json.contains("\"traffic\":null"), "{json}");
        // Reports round-trip with the traffic section filled...
        let report = AnalyticBackend
            .evaluate(&headline().with_traffic(TrafficSpec::stream(4)))
            .unwrap();
        let json = serde::json::to_string(&report).unwrap();
        let back: Report = serde::json::from_str(&json).unwrap();
        assert_eq!(report, back);
        // ...and classic reports end with the trailing null field, so
        // prior archived reports differ only by this suffix.
        let report = AnalyticBackend.evaluate(&headline()).unwrap();
        let json = serde::json::to_string(&report).unwrap();
        assert!(json.ends_with(",\"traffic\":null}"), "{json}");
    }

    #[test]
    fn scenario_and_report_round_trip_with_faults() {
        use gossip_faults::ChurnSpec;
        let scenario =
            headline().with_faults(FaultSpec::none().with_churn(ChurnSpec::symmetric(5.0, 150)));
        let json = serde::json::to_string(&scenario).unwrap();
        let back: Scenario = serde::json::from_str(&json).unwrap();
        assert_eq!(scenario, back);
        let report = AnalyticBackend.evaluate(&headline()).unwrap();
        let json = serde::json::to_string(&report).unwrap();
        assert!(json.contains("\"faults\":null"), "{json}");
        let back: Report = serde::json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
