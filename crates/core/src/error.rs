//! Error type for the analytical model.

use std::fmt;

/// Errors produced by model construction and the numerical solvers.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelError {
    /// A parameter was outside its mathematical domain.
    InvalidParameter {
        /// Parameter name, e.g. `"q"`.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Human-readable domain description, e.g. `"must lie in (0, 1]"`.
        requirement: &'static str,
    },
    /// An iterative solver did not reach its tolerance.
    NoConvergence {
        /// What was being solved, e.g. `"self-consistency u"`.
        what: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// The fanout distribution cannot support the requested computation
    /// (e.g. zero mean fanout — nobody ever gossips).
    Degenerate {
        /// Explanation of the degeneracy.
        why: &'static str,
    },
    /// The requested target cannot be achieved for any parameter value
    /// (e.g. a reliability target above what `q = 1` delivers).
    Unachievable {
        /// What was requested.
        what: &'static str,
    },
    /// A scenario feature is outside an evaluation backend's model
    /// (e.g. crash schedules under the analytic generating-function
    /// model, which is untimed).
    Unsupported {
        /// The backend that rejected the scenario.
        backend: &'static str,
        /// The unsupported feature.
        what: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidParameter {
                name,
                value,
                requirement,
            } => write!(f, "invalid parameter {name} = {value}: {requirement}"),
            ModelError::NoConvergence { what, iterations } => {
                write!(
                    f,
                    "solver for {what} did not converge after {iterations} iterations"
                )
            }
            ModelError::Degenerate { why } => write!(f, "degenerate model: {why}"),
            ModelError::Unachievable { what } => write!(f, "unachievable target: {what}"),
            ModelError::Unsupported { backend, what } => {
                write!(f, "backend {backend} does not support {what}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = ModelError::InvalidParameter {
            name: "q",
            value: 1.5,
            requirement: "must lie in (0, 1]",
        };
        assert!(e.to_string().contains("q = 1.5"));
        let e = ModelError::NoConvergence {
            what: "u",
            iterations: 99,
        };
        assert!(e.to_string().contains("99"));
        let e = ModelError::Degenerate { why: "zero mean" };
        assert!(e.to_string().contains("zero mean"));
        let e = ModelError::Unachievable { what: "R >= 1" };
        assert!(e.to_string().contains("R >= 1"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(ModelError::Degenerate { why: "x" });
        assert!(e.source().is_none());
    }
}
