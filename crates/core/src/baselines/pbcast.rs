//! The pbcast recurrence model (paper §2, reference \[5\]).
//!
//! Bimodal Multicast analyzes gossip round by round: if `s_t` of the `n`
//! processes are infected after round `t`, each susceptible process is
//! contacted in the next round by any given infected process with
//! probability `≈ f/n`, so
//!
//! ```text
//! E[s_{t+1}] = s_t + (n − s_t) · (1 − (1 − f/n)^{s_t})
//! ```
//!
//! Fail-stop crashes thin the infectious population: with nonfailed
//! ratio `q` only `q·s_t` of the infected forward, giving the adjusted
//! contact probability used here. The paper's critique (§2) — the exact
//! chain is intractable, so "only upper bounds or lower bounds on the
//! reliability can be obtained" and the model "does not show how to find
//! a proper number of rounds" — is what E12 probes: this mean-field
//! recurrence tracks the *bulk* of dissemination well but has no notion
//! of a critical point or of the take-off/die-out dichotomy.

/// Mean-field recurrence for round-based gossip dissemination.
#[derive(Clone, Copy, Debug)]
pub struct PbcastRecurrence {
    /// Group size `n`.
    pub n: usize,
    /// Per-round fanout `f` of an infected process.
    pub fanout: f64,
    /// Nonfailed member ratio `q` (failed processes never forward).
    pub q: f64,
}

impl PbcastRecurrence {
    /// Creates the recurrence. Panics on out-of-domain parameters.
    pub fn new(n: usize, fanout: f64, q: f64) -> Self {
        assert!(n >= 2, "need at least 2 processes");
        assert!(fanout >= 0.0 && fanout.is_finite(), "fanout must be >= 0");
        assert!(q > 0.0 && q <= 1.0, "q must be in (0, 1]");
        Self { n, fanout, q }
    }

    /// One step of the recurrence: expected infected count after the
    /// next round, starting from `s_t` infected.
    pub fn step(&self, s_t: f64) -> f64 {
        let n = self.n as f64;
        let s_t = s_t.clamp(0.0, n);
        // Only nonfailed infected processes gossip; each susceptible
        // escapes one infectious process's round with prob 1 − f/n.
        let active = self.q * s_t;
        let escape = (1.0 - self.fanout / n).max(0.0).powf(active);
        s_t + (n - s_t) * (1.0 - escape)
    }

    /// Expected infected-count trajectory over `rounds` rounds, starting
    /// from one infected process (the source). Index `t` holds `E[s_t]`.
    pub fn trajectory(&self, rounds: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(rounds + 1);
        let mut s = 1.0;
        out.push(s);
        for _ in 0..rounds {
            s = self.step(s);
            out.push(s);
        }
        out
    }

    /// Expected infected fraction (of all n) after `rounds` rounds.
    pub fn infected_fraction(&self, rounds: usize) -> f64 {
        self.trajectory(rounds)
            .last()
            .copied()
            .expect("trajectory non-empty")
            / self.n as f64
    }

    /// Smallest round count whose expected infected fraction reaches
    /// `target`; `None` if the recurrence stalls below it (fixed point
    /// reached) within `max_rounds`.
    pub fn rounds_to_fraction(&self, target: f64, max_rounds: usize) -> Option<usize> {
        assert!((0.0..=1.0).contains(&target), "target must be in [0, 1]");
        let n = self.n as f64;
        let mut s = 1.0;
        if s / n >= target {
            return Some(0);
        }
        for round in 1..=max_rounds {
            let next = self.step(s);
            if next / n >= target {
                return Some(round);
            }
            // Stall detection: mean-field fixed point.
            if (next - s).abs() < 1e-12 {
                return None;
            }
            s = next;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_growth_to_saturation() {
        let m = PbcastRecurrence::new(1000, 3.0, 1.0);
        let traj = m.trajectory(30);
        for w in traj.windows(2) {
            assert!(w[1] >= w[0], "recurrence must be monotone");
        }
        assert!(
            traj.last().unwrap() / 1000.0 > 0.99,
            "fanout 3 should saturate: {}",
            traj.last().unwrap()
        );
    }

    #[test]
    fn early_rounds_are_exponential() {
        // While s ≪ n, s_{t+1} ≈ s_t(1 + f): growth factor ≈ 1 + f.
        let m = PbcastRecurrence::new(1_000_000, 2.0, 1.0);
        let traj = m.trajectory(5);
        for w in traj.windows(2) {
            let factor = w[1] / w[0];
            assert!(
                (factor - 3.0).abs() < 0.1,
                "early growth factor {factor} ≉ 1 + f"
            );
        }
    }

    #[test]
    fn failures_slow_dissemination() {
        let healthy = PbcastRecurrence::new(1000, 3.0, 1.0);
        let degraded = PbcastRecurrence::new(1000, 3.0, 0.5);
        assert!(healthy.infected_fraction(6) > degraded.infected_fraction(6));
    }

    #[test]
    fn rounds_to_fraction_logarithmic_in_n() {
        // Doubling n adds O(1) rounds — the gossip scalability story.
        let r1 = PbcastRecurrence::new(1_000, 3.0, 1.0)
            .rounds_to_fraction(0.99, 100)
            .unwrap();
        let r2 = PbcastRecurrence::new(1_000_000, 3.0, 1.0)
            .rounds_to_fraction(0.99, 100)
            .unwrap();
        assert!(r2 > r1);
        assert!(r2 - r1 <= 8, "r({}) = {r1}, r(10^6) = {r2}", 1000);
    }

    #[test]
    fn zero_fanout_never_reaches() {
        let m = PbcastRecurrence::new(100, 0.0, 1.0);
        assert_eq!(m.rounds_to_fraction(0.5, 50), None);
        assert!((m.infected_fraction(50) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn no_critical_point_blind_spot() {
        // The paper's §2 critique made concrete: the mean-field
        // recurrence still predicts eventual (partial) spread below the
        // percolation threshold, where the real process a.s. dies — e.g.
        // f·q = 0.6 < 1. The recurrence saturates at a nonzero fixed
        // point (it ignores variance/extinction).
        let m = PbcastRecurrence::new(10_000, 2.0, 0.3);
        let frac = m.infected_fraction(200);
        assert!(
            frac > 0.05,
            "mean-field happily spreads below criticality: {frac}"
        );
        // The generalized-random-graph model knows better:
        let d = crate::distribution::PoissonFanout::new(2.0);
        let r = crate::SitePercolation::new(&d, 0.3)
            .unwrap()
            .reliability()
            .unwrap();
        assert_eq!(r, 0.0);
    }

    #[test]
    #[should_panic(expected = "q must be in (0, 1]")]
    fn rejects_bad_q() {
        PbcastRecurrence::new(10, 2.0, 0.0);
    }
}
