//! The Kermarrec–Massoulié–Ganesh success criterion (paper §2,
//! reference \[6\] — the "Microsoft model").
//!
//! In the `ζ(n, p_n)` random-graph model where every member gossips to
//! each other member independently with probability `p_n`, taking
//! `p_n = (ln n + c + o(1))/n` (i.e. mean fanout `ln n + c`) gives
//!
//! ```text
//! Pr(success of gossiping) → e^{−e^{−c}}    as n → ∞,
//! ```
//!
//! where *success* means **every** member receives the message. With a
//! crashed fraction `ε`, the same law holds on the `n' = (1 − ε)n`
//! survivors. The paper's critique (§2): this answers only the
//! all-or-nothing question — "we still need to know the probability that
//! one node receives the message" — which is exactly what its
//! giant-component reliability adds. E13 races this criterion against
//! measured whole-group success.

/// Success probability `e^{−e^{−c}}` for mean fanout `ln n' + c` over
/// `n'` nonfailed members.
pub fn success_probability(n_nonfailed: usize, mean_fanout: f64) -> f64 {
    assert!(n_nonfailed >= 2, "need at least 2 nonfailed members");
    assert!(
        mean_fanout >= 0.0 && mean_fanout.is_finite(),
        "fanout must be finite and >= 0"
    );
    let c = mean_fanout - (n_nonfailed as f64).ln();
    (-(-c).exp()).exp()
}

/// The `c` offset achieving the given asymptotic success probability:
/// `c = −ln(−ln p)`.
pub fn offset_for(target_p: f64) -> f64 {
    assert!(
        target_p > 0.0 && target_p < 1.0,
        "target probability must be in (0, 1), got {target_p}"
    );
    -(-target_p.ln()).ln()
}

/// Mean fanout required for the given success probability over
/// `n_nonfailed` survivors: `ln n' − ln(−ln p)` (the paper's §2
/// restatement: with failed proportion ε, use `n' = (1 − ε)n`).
pub fn required_fanout(n_nonfailed: usize, target_p: f64) -> f64 {
    assert!(n_nonfailed >= 2, "need at least 2 nonfailed members");
    (n_nonfailed as f64).ln() + offset_for(target_p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gumbel_law_reference_points() {
        // c = 0 → e^{−1} ≈ 0.3679; large c → 1; very negative c → 0.
        let n = 1000;
        let ln_n = (n as f64).ln();
        let p0 = success_probability(n, ln_n);
        assert!((p0 - 0.367_879).abs() < 1e-5, "c=0 gives {p0}");
        assert!(success_probability(n, ln_n + 6.0) > 0.997);
        assert!(success_probability(n, ln_n - 3.0) < 1e-8);
    }

    #[test]
    fn success_probability_monotone_in_fanout() {
        let n = 5000;
        let mut last = 0.0;
        for i in 0..40 {
            let f = i as f64 * 0.5;
            let p = success_probability(n, f);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn required_fanout_roundtrip() {
        for &p in &[0.1, 0.5, 0.9, 0.999] {
            for &n in &[100usize, 10_000] {
                let f = required_fanout(n, p);
                let back = success_probability(n, f);
                assert!((back - p).abs() < 1e-12, "n={n}, p={p}: roundtrip {back}");
            }
        }
    }

    #[test]
    fn offsets() {
        // p = e^{−e^{0}} = e^{−1} ⇒ c = 0.
        assert!(offset_for((-1.0f64).exp()).abs() < 1e-12);
        // 0.999 needs c ≈ 6.9.
        let c = offset_for(0.999);
        assert!((c - 6.907).abs() < 1e-3, "c = {c}");
    }

    #[test]
    fn failure_adjustment_matches_paper_restatement() {
        // §2: with failed proportion ε, success holds w.p. e^{−e^{−c}}
        // if p'_n = [ln n' + c]/n' — i.e. fanout relative to survivors.
        let n = 10_000;
        let eps = 0.3;
        let survivors = ((1.0 - eps) * n as f64) as usize;
        let f = required_fanout(survivors, 0.99);
        assert!(f > required_fanout(survivors, 0.9));
        assert!((success_probability(survivors, f) - 0.99).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "target probability")]
    fn rejects_certainty() {
        required_fanout(100, 1.0);
    }
}
