//! The SI epidemic model (paper §2, reference \[9\] — LRG).
//!
//! Gossip as disease: every member is Susceptible or Infected, infected
//! members contact others at rate `β` (≈ fanout per round), and the
//! infected fraction follows the logistic balance equation
//!
//! ```text
//! di/dt = β · i · (1 − i)   ⇒   i(t) = i₀ / (i₀ + (1 − i₀)·e^{−βt})
//! ```
//!
//! The paper's critique (§2): the SI model "cannot explain how to obtain
//! the optimal value of the probability with which a node gossips" and
//! "does not consider node failures". We implement it faithfully —
//! including that blindness — and additionally expose the obvious
//! failure-thinned variant (`β → β·q`) so E12 can show thinning alone
//! does not recover the critical point.

/// Continuous-time SI (logistic) dissemination model.
#[derive(Clone, Copy, Debug)]
pub struct SiModel {
    /// Contact rate β (expected contacts per infected member per unit
    /// time; ≈ mean fanout per round).
    pub beta: f64,
    /// Initial infected fraction `i₀` (a single source in a group of n:
    /// `1/n`).
    pub i0: f64,
}

impl SiModel {
    /// Creates the model. Panics on non-positive `β` or `i₀ ∉ (0, 1]`.
    pub fn new(beta: f64, i0: f64) -> Self {
        assert!(beta > 0.0 && beta.is_finite(), "beta must be positive");
        assert!(i0 > 0.0 && i0 <= 1.0, "i0 must be in (0, 1]");
        Self { beta, i0 }
    }

    /// Single-source initial condition for a group of `n` members.
    pub fn single_source(beta: f64, n: usize) -> Self {
        assert!(n >= 1, "group must be non-empty");
        Self::new(beta, 1.0 / n as f64)
    }

    /// Failure-thinned variant: only a ratio `q` of members forward, so
    /// the effective contact rate is `β·q`. (The original model has no
    /// failure notion; this is the textbook patch.)
    pub fn with_failures(self, q: f64) -> Self {
        assert!(q > 0.0 && q <= 1.0, "q must be in (0, 1]");
        Self {
            beta: self.beta * q,
            i0: self.i0,
        }
    }

    /// Infected fraction at time `t` (closed-form logistic solution).
    pub fn infected_fraction(&self, t: f64) -> f64 {
        assert!(t >= 0.0, "time must be non-negative");
        let e = (-self.beta * t).exp();
        self.i0 / (self.i0 + (1.0 - self.i0) * e)
    }

    /// Time at which the infected fraction reaches `target ∈ (i₀, 1)`:
    /// `t = ln[ target(1−i₀) / (i₀(1−target)) ] / β`.
    pub fn time_to_fraction(&self, target: f64) -> f64 {
        assert!(
            target > self.i0 && target < 1.0,
            "target must lie in (i0, 1), got {target}"
        );
        ((target * (1.0 - self.i0)) / (self.i0 * (1.0 - target))).ln() / self.beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logistic_shape() {
        let m = SiModel::single_source(3.0, 1000);
        assert!((m.infected_fraction(0.0) - 0.001).abs() < 1e-12);
        let mut last = 0.0;
        for i in 0..60 {
            let t = i as f64 * 0.2;
            let frac = m.infected_fraction(t);
            assert!(frac >= last, "monotone");
            assert!((0.0..=1.0).contains(&frac));
            last = frac;
        }
        assert!(last > 0.999, "saturates: {last}");
    }

    #[test]
    fn time_to_fraction_inverts_infected_fraction() {
        let m = SiModel::single_source(2.0, 5000);
        for &target in &[0.01, 0.5, 0.9, 0.999] {
            let t = m.time_to_fraction(target);
            let back = m.infected_fraction(t);
            assert!((back - target).abs() < 1e-10, "target {target}: got {back}");
        }
    }

    #[test]
    fn spread_time_logarithmic_in_n() {
        // t(90%) grows like ln n / β — the classic epidemic-speed law.
        let t1 = SiModel::single_source(3.0, 1_000).time_to_fraction(0.9);
        let t2 = SiModel::single_source(3.0, 1_000_000).time_to_fraction(0.9);
        let expected_gap = (1_000.0f64).ln() / 3.0; // ln(n2/n1)/β
        assert!(
            ((t2 - t1) - expected_gap).abs() < 0.05,
            "gap {} vs expected {expected_gap}",
            t2 - t1
        );
    }

    #[test]
    fn failure_thinning_slows_but_never_stops() {
        // The documented blindness: even q far below any percolation
        // threshold, the SI model still predicts full dissemination —
        // just slower.
        let healthy = SiModel::single_source(2.0, 10_000);
        let degraded = healthy.with_failures(0.2); // fq = 0.4 ≪ 1
        let t_h = healthy.time_to_fraction(0.99);
        let t_d = degraded.time_to_fraction(0.99);
        assert!(t_d > t_h);
        assert!(
            degraded.infected_fraction(t_d) > 0.98,
            "SI has no critical point"
        );
    }

    #[test]
    #[should_panic(expected = "target must lie in")]
    fn rejects_unreachable_target() {
        SiModel::single_source(1.0, 10).time_to_fraction(1.0);
    }
}
