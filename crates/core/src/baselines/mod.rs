//! The three modeling approaches the paper's related work (§2) compares
//! against — implemented so the comparison is executable, not rhetorical.
//!
//! * [`pbcast`] — the round-based *recurrence model* of Bimodal
//!   Multicast (Birman et al., the paper's reference \[5\]);
//! * [`si`] — the *SI epidemic model* used for the LRG protocol (Jia et
//!   al., reference \[9\]);
//! * [`asymptotic`] — the Kermarrec–Massoulié–Ganesh random-graph
//!   *success criterion* `fanout = ln n + c ⇒ Pr(success) → e^{−e^{−c}}`
//!   (reference \[6\], the "Microsoft model").
//!
//! Each module documents what its model can and cannot answer; the E12
//! and E13 experiments race all of them (plus this crate's
//! generalized-random-graph model) against the simulator.

pub mod asymptotic;
pub mod pbcast;
pub mod si;
