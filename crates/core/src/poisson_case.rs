//! Closed forms for the Poisson case study (paper §4.3).
//!
//! With `P = Po(z)`, `G0 = G1 = e^{z(x−1)}` and everything collapses to
//! elementary functions of the product `a = z·q`:
//!
//! * critical point `q_c = 1/z` (Eq. 10);
//! * reliability `S` solving `S = 1 − e^{−zqS}` (Eq. 11), in closed form
//!   `S = 1 + W0(−a·e^{−a})/a` via the Lambert W function;
//! * inverse design `z = −ln(1 − S)/(qS)` (Eq. 12) — the curve family of
//!   Fig. 2.
//!
//! These duplicate what [`crate::percolation`] computes generically; the
//! redundancy is deliberate (they cross-validate each other in the tests
//! and benches).

use crate::error::ModelError;
use crate::lambertw::lambert_w0;

/// Critical nonfailed ratio for Poisson fanout, `q_c = 1/z` (Eq. 10).
///
/// Values above 1 indicate the fanout is too small to percolate even
/// without failures. Errors for `z ≤ 0`.
pub fn critical_q(z: f64) -> Result<f64, ModelError> {
    if !(z.is_finite() && z > 0.0) {
        return Err(ModelError::InvalidParameter {
            name: "z",
            value: z,
            requirement: "mean fanout must be positive",
        });
    }
    Ok(1.0 / z)
}

/// Reliability of gossiping for Poisson fanout — the solution
/// `S ∈ [0, 1)` of `S = 1 − e^{−zqS}` (Eq. 11), via Lambert W.
///
/// Returns 0 at or below the critical point `zq ≤ 1`.
pub fn reliability(z: f64, q: f64) -> Result<f64, ModelError> {
    if !(z.is_finite() && z >= 0.0) {
        return Err(ModelError::InvalidParameter {
            name: "z",
            value: z,
            requirement: "mean fanout must be finite and >= 0",
        });
    }
    if !(q.is_finite() && q > 0.0 && q <= 1.0) {
        return Err(ModelError::InvalidParameter {
            name: "q",
            value: q,
            requirement: "nonfailed member ratio must lie in (0, 1]",
        });
    }
    let a = z * q;
    if a <= 1.0 {
        return Ok(0.0);
    }
    // S = 1 + W0(−a e^{−a})/a. For a > 1, −a·e^{−a} ∈ (−1/e, 0) and W0
    // picks the non-trivial root.
    let s = 1.0 + lambert_w0(-a * (-a).exp()) / a;
    Ok(s.clamp(0.0, 1.0))
}

/// Mean fanout needed to reach reliability `S` at nonfailed ratio `q`:
/// `z = −ln(1 − S)/(qS)` (Eq. 12) — the Fig. 2 curve family.
///
/// Requires `S ∈ (0, 1)` (the model cannot promise exactly 1 with finite
/// fanout) and `q ∈ (0, 1]`.
pub fn mean_fanout_for(s: f64, q: f64) -> Result<f64, ModelError> {
    if !(s.is_finite() && s > 0.0 && s < 1.0) {
        return Err(ModelError::InvalidParameter {
            name: "S",
            value: s,
            requirement: "target reliability must lie in (0, 1)",
        });
    }
    if !(q.is_finite() && q > 0.0 && q <= 1.0) {
        return Err(ModelError::InvalidParameter {
            name: "q",
            value: q,
            requirement: "nonfailed member ratio must lie in (0, 1]",
        });
    }
    Ok(-(1.0 - s).ln() / (q * s))
}

/// Maximum tolerable failure ratio `1 − q_min` such that Poisson-fanout
/// gossip with mean `z` still achieves reliability at least `target_s`.
///
/// Solves Eq. 12 for `q`: `q_min = −ln(1 − S)/(z·S)`. Errors if even
/// `q = 1` cannot reach the target.
pub fn max_tolerable_failure(z: f64, target_s: f64) -> Result<f64, ModelError> {
    let q_min = mean_fanout_for(target_s, 1.0)? / z;
    if !(z.is_finite() && z > 0.0) {
        return Err(ModelError::InvalidParameter {
            name: "z",
            value: z,
            requirement: "mean fanout must be positive",
        });
    }
    if q_min > 1.0 {
        return Err(ModelError::Unachievable {
            what: "reliability target exceeds what q = 1 delivers at this fanout",
        });
    }
    Ok(1.0 - q_min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::PoissonFanout;
    use crate::percolation::SitePercolation;

    #[test]
    fn closed_form_matches_generic_solver() {
        for &(z, q) in &[(1.5, 1.0), (2.0, 0.9), (4.0, 0.9), (6.0, 0.6), (6.7, 0.4)] {
            let closed = reliability(z, q).unwrap();
            let d = PoissonFanout::new(z);
            let generic = SitePercolation::new(&d, q).unwrap().reliability().unwrap();
            assert!(
                (closed - generic).abs() < 1e-9,
                "z={z}, q={q}: closed {closed} vs generic {generic}"
            );
        }
    }

    #[test]
    fn paper_value_0967() {
        // §5.2: both {4.0, 0.9} and {6.0, 0.6} give R ≈ 0.967 in the
        // paper; the exact Eq. 11 root at zq = 3.6 is 0.969506.
        let r = reliability(4.0, 0.9).unwrap();
        assert!((r - 0.969_506).abs() < 1e-5, "got {r}");
        assert!((r - 0.967).abs() < 4e-3, "must stay near the paper's 0.967");
        let r2 = reliability(6.0, 0.6).unwrap();
        assert!((r - r2).abs() < 1e-12);
    }

    #[test]
    fn subcritical_is_zero() {
        assert_eq!(reliability(2.0, 0.4).unwrap(), 0.0); // zq = 0.8 < 1
        assert_eq!(reliability(1.0, 1.0).unwrap(), 0.0); // zq = 1 exactly
        assert_eq!(reliability(0.0, 1.0).unwrap(), 0.0);
    }

    #[test]
    fn eq12_inverts_eq11() {
        // mean_fanout_for(S, q) must produce z with reliability(z, q) = S.
        for &s in &[0.2, 0.5, 0.8, 0.967, 0.9999] {
            for &q in &[0.3, 0.6, 1.0] {
                let z = mean_fanout_for(s, q).unwrap();
                let back = reliability(z, q).unwrap();
                assert!(
                    (back - s).abs() < 1e-9,
                    "S={s}, q={q}: z={z}, roundtrip {back}"
                );
            }
        }
    }

    #[test]
    fn fig2_range_check() {
        // Fig. 2 caption: S ∈ [0.1111, 0.9999], q from 0.2 to 1.0, z up to
        // ~50. Endpoint check at q = 0.2, S = 0.9999:
        // z = −ln(1e−4)/(0.2·0.9999) ≈ 46.06.
        let z = mean_fanout_for(0.9999, 0.2).unwrap();
        assert!((z - 46.06).abs() < 0.05, "z = {z}");
        // And at q = 1.0, S = 0.1111 — the small-S foot of the curve:
        // z = −ln(0.8889)/0.1111 ≈ 1.06.
        let z = mean_fanout_for(0.1111, 1.0).unwrap();
        assert!((z - 1.06).abs() < 0.01, "z = {z}");
    }

    #[test]
    fn critical_point() {
        assert!((critical_q(4.0).unwrap() - 0.25).abs() < 1e-15);
        assert!(critical_q(0.0).is_err());
        assert!(critical_q(-3.0).is_err());
    }

    #[test]
    fn reliability_increases_with_fanout_and_q() {
        let r1 = reliability(2.0, 0.9).unwrap();
        let r2 = reliability(4.0, 0.9).unwrap();
        let r3 = reliability(4.0, 1.0).unwrap();
        assert!(r1 < r2 && r2 < r3);
    }

    #[test]
    fn max_tolerable_failure_roundtrip() {
        // z = 4, target 0.9: q_min = −ln(0.1)/(4·0.9) ≈ 0.6396.
        let eps = max_tolerable_failure(4.0, 0.9).unwrap();
        let q_min = 1.0 - eps;
        let r = reliability(4.0, q_min).unwrap();
        assert!(
            (r - 0.9).abs() < 1e-9,
            "at q_min reliability should hit target, got {r}"
        );
        // Slightly fewer failures → above target; more → below.
        assert!(reliability(4.0, q_min + 0.01).unwrap() > 0.9);
        assert!(reliability(4.0, q_min - 0.01).unwrap() < 0.9);
    }

    #[test]
    fn max_tolerable_failure_unachievable() {
        // Fanout 1.2 can never reach 0.99 reliability even with q = 1.
        assert!(matches!(
            max_tolerable_failure(1.2, 0.99),
            Err(ModelError::Unachievable { .. })
        ));
    }

    #[test]
    fn domain_errors() {
        assert!(reliability(-1.0, 0.5).is_err());
        assert!(reliability(2.0, 0.0).is_err());
        assert!(reliability(2.0, 1.5).is_err());
        assert!(mean_fanout_for(0.0, 0.5).is_err());
        assert!(mean_fanout_for(1.0, 0.5).is_err());
        assert!(mean_fanout_for(0.5, 0.0).is_err());
    }
}
