//! The `Gossip(n, P, q)` façade — the paper's model object (§4.1).

use crate::distribution::FanoutDistribution;
use crate::error::ModelError;
use crate::percolation::SitePercolation;
use crate::success;

/// The gossiping model `Gossip(n, P, q)`: `n` members, fanout
/// distribution `P`, and nonfailed member ratio `q`; the source member
/// never fails (paper §4.1).
///
/// This type bundles the percolation analysis and the success calculus
/// behind one API, mirroring how the paper uses the model: pick `(P, q)`,
/// read off reliability, then size the execution count.
#[derive(Clone, Debug)]
pub struct Gossip<D: FanoutDistribution> {
    n: usize,
    dist: D,
    q: f64,
}

impl<D: FanoutDistribution> Gossip<D> {
    /// Creates the model. Requires `n ≥ 2` (a group needs someone to
    /// gossip to) and `q ∈ (0, 1]`.
    pub fn new(n: usize, dist: D, q: f64) -> Result<Self, ModelError> {
        if n < 2 {
            return Err(ModelError::InvalidParameter {
                name: "n",
                value: n as f64,
                requirement: "group must have at least 2 members",
            });
        }
        if !(q.is_finite() && q > 0.0 && q <= 1.0) {
            return Err(ModelError::InvalidParameter {
                name: "q",
                value: q,
                requirement: "nonfailed member ratio must lie in (0, 1]",
            });
        }
        Ok(Self { n, dist, q })
    }

    /// Group size `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Nonfailed member ratio `q`.
    #[inline]
    pub fn q(&self) -> f64 {
        self.q
    }

    /// The fanout distribution `P`.
    #[inline]
    pub fn distribution(&self) -> &D {
        &self.dist
    }

    /// Number of nonfailed members `[n·q]`, rounded to the nearest
    /// integer — the paper's bracket notation `n_nonfailed = [n·q]`
    /// denotes rounding, not floor (e.g. `n = 10, q = 0.25` gives 3,
    /// matching the expected count `2.5` to the nearest member).
    pub fn nonfailed_count(&self) -> usize {
        (self.n as f64 * self.q).round() as usize
    }

    /// The percolation view of this model.
    pub fn percolation(&self) -> Result<SitePercolation<'_, D>, ModelError> {
        SitePercolation::new(&self.dist, self.q)
    }

    /// Reliability of gossiping `R(q, P)` for one execution.
    pub fn reliability(&self) -> Result<f64, ModelError> {
        self.percolation()?.reliability()
    }

    /// Expected number of nonfailed members that receive the message in
    /// one execution, `R(q, P) · ⌊n·q⌋`.
    pub fn expected_receivers(&self) -> Result<f64, ModelError> {
        Ok(self.reliability()? * self.nonfailed_count() as f64)
    }

    /// Critical nonfailed ratio `q_c` (Eq. 3); `None` if the distribution
    /// can never percolate.
    pub fn critical_q(&self) -> Option<f64> {
        self.percolation().ok().and_then(|p| p.critical_q())
    }

    /// Whether the configured `q` is above the critical point — i.e. the
    /// failure level is tolerable at all.
    pub fn tolerates_failures(&self) -> bool {
        self.percolation()
            .map(|p| p.is_supercritical())
            .unwrap_or(false)
    }

    /// Probability that a given nonfailed member is reached at least once
    /// in `t` executions (Eq. 5), using this model's reliability as `p_r`.
    pub fn success_probability(&self, t: u32) -> Result<f64, ModelError> {
        Ok(success::success_probability(self.reliability()?, t))
    }

    /// Minimum executions to achieve success probability `p_s` (Eq. 6).
    pub fn required_executions(&self, p_s: f64) -> Result<u32, ModelError> {
        success::required_executions(self.reliability()?, p_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{FixedFanout, PoissonFanout};

    #[test]
    fn doc_example_numbers() {
        let g = Gossip::new(1000, PoissonFanout::new(4.0), 0.9).unwrap();
        assert_eq!(g.n(), 1000);
        assert_eq!(g.nonfailed_count(), 900);
        let r = g.reliability().unwrap();
        assert!((r - 0.967).abs() < 5e-3);
        // The paper works Eq. 6 with its rounded p_r = 0.967 and gets
        // t = 3; the exact root p_r = 0.969506 sits just across the
        // integer boundary, giving t = 2 (1 − (1−0.9695)² ≈ 0.99907).
        assert_eq!(g.required_executions(0.999).unwrap(), 2);
        assert!(
            crate::success::required_executions(0.967, 0.999).unwrap() == 3,
            "paper's rounded p_r reproduces its t = 3"
        );
        assert!(g.tolerates_failures());
        assert!((g.critical_q().unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn expected_receivers_scales_with_n() {
        let small = Gossip::new(1000, PoissonFanout::new(4.0), 0.9).unwrap();
        let large = Gossip::new(5000, PoissonFanout::new(4.0), 0.9).unwrap();
        let r_small = small.expected_receivers().unwrap();
        let r_large = large.expected_receivers().unwrap();
        assert!((r_large / r_small - 5.0).abs() < 1e-9);
    }

    #[test]
    fn subcritical_model() {
        let g = Gossip::new(1000, PoissonFanout::new(4.0), 0.2).unwrap();
        assert!(!g.tolerates_failures());
        assert_eq!(g.reliability().unwrap(), 0.0);
        assert!(g.required_executions(0.9).is_err());
        assert!((g.success_probability(10).unwrap() - 0.0).abs() < 1e-15);
    }

    #[test]
    fn construction_errors() {
        assert!(Gossip::new(1, PoissonFanout::new(4.0), 0.9).is_err());
        assert!(Gossip::new(100, PoissonFanout::new(4.0), 0.0).is_err());
        assert!(Gossip::new(100, PoissonFanout::new(4.0), 1.01).is_err());
    }

    #[test]
    fn never_percolating_distribution() {
        let g = Gossip::new(100, FixedFanout::new(1), 1.0).unwrap();
        assert_eq!(g.critical_q(), None);
        assert!(!g.tolerates_failures());
        assert_eq!(g.reliability().unwrap(), 0.0);
    }

    #[test]
    fn accessors() {
        let g = Gossip::new(500, PoissonFanout::new(2.5), 0.75).unwrap();
        assert_eq!(g.q(), 0.75);
        assert!((g.distribution().z() - 2.5).abs() < 1e-15);
        assert_eq!(g.nonfailed_count(), 375);
    }

    #[test]
    fn nonfailed_count_rounds_to_nearest() {
        // The paper's [n·q] is rounding, not floor: 10 · 0.25 = 2.5 → 3.
        let g = Gossip::new(10, PoissonFanout::new(4.0), 0.25).unwrap();
        assert_eq!(g.nonfailed_count(), 3);
        // 10 · 0.24 = 2.4 → 2.
        let g = Gossip::new(10, PoissonFanout::new(4.0), 0.24).unwrap();
        assert_eq!(g.nonfailed_count(), 2);
    }
}
