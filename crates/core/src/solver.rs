//! Scalar root-finding and fixed-point iteration.
//!
//! Two solvers cover everything the model needs:
//!
//! * [`smallest_fixed_point`] — for the self-consistency condition
//!   `u = 1 − q + q·G1(u)` (paper Eq. 4 / Callaway et al.). The map is
//!   monotone non-decreasing and maps `[0, 1]` into itself, so iterating
//!   from 0 converges to the *smallest* fixed point — exactly the root
//!   the percolation theory wants (the trivial root `u = 1` always
//!   exists).
//! * [`bisect`] — for inverse problems (required fanout, maximum
//!   tolerable failure ratio), where the objective is monotone but has no
//!   closed form.

use crate::error::ModelError;

/// Outcome of a fixed-point solve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FixedPoint {
    /// The fixed-point value.
    pub value: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Residual `|φ(u) − u|` at the returned value.
    pub residual: f64,
}

/// Iterates `u ← φ(u)` from `start` until `|φ(u) − u| ≤ tol`.
///
/// Convergence near the percolation threshold is only linear with rate
/// approaching 1, so every few steps an Aitken Δ² extrapolation is
/// attempted; it is kept only when it stays inside `[lo, hi]` and reduces
/// the residual (safe acceleration — never worse than plain iteration).
pub fn smallest_fixed_point<F: Fn(f64) -> f64>(
    phi: F,
    start: f64,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<FixedPoint, ModelError> {
    let clamp = |x: f64| x.clamp(lo, hi);
    let mut u = clamp(start);
    let mut iterations = 0usize;
    while iterations < max_iter {
        let u1 = clamp(phi(u));
        iterations += 1;
        if (u1 - u).abs() <= tol {
            return Ok(FixedPoint {
                value: u1,
                iterations,
                residual: (u1 - u).abs(),
            });
        }
        // Aitken Δ² every 4 plain steps: u* ≈ u − (Δ1)² / (Δ2 − Δ1).
        if iterations.is_multiple_of(4) {
            let u2 = clamp(phi(u1));
            iterations += 1;
            let d1 = u1 - u;
            let d2 = u2 - u1;
            let denom = d2 - d1;
            if denom.abs() > f64::EPSILON {
                let accel = u - d1 * d1 / denom;
                if (lo..=hi).contains(&accel) {
                    let r_accel = (phi(accel) - accel).abs();
                    let r_plain = (phi(u2) - u2).abs();
                    iterations += 2;
                    if r_accel < r_plain {
                        if r_accel <= tol {
                            return Ok(FixedPoint {
                                value: accel,
                                iterations,
                                residual: r_accel,
                            });
                        }
                        u = accel;
                        continue;
                    }
                }
            }
            u = u2;
        } else {
            u = u1;
        }
    }
    // One last residual check: iteration may have stagnated within
    // floating-point noise of the fixed point without meeting `tol`.
    let residual = (phi(u) - u).abs();
    if residual <= tol * 16.0 {
        return Ok(FixedPoint {
            value: u,
            iterations,
            residual,
        });
    }
    Err(ModelError::NoConvergence {
        what: "fixed point",
        iterations,
    })
}

/// Finds a root of `f` on `[lo, hi]` by bisection, assuming
/// `sign(f(lo)) ≠ sign(f(hi))`.
///
/// Returns the midpoint once the bracket is narrower than `tol`. Exact
/// zeros at either endpoint are returned immediately.
pub fn bisect<F: Fn(f64) -> f64>(
    f: F,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, ModelError> {
    if lo > hi {
        std::mem::swap(&mut lo, &mut hi);
    }
    let mut flo = f(lo);
    if flo == 0.0 {
        return Ok(lo);
    }
    let fhi = f(hi);
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(ModelError::InvalidParameter {
            name: "bracket",
            value: lo,
            requirement: "f(lo) and f(hi) must have opposite signs",
        });
    }
    for _ in 0..max_iter {
        let mid = 0.5 * (lo + hi);
        if hi - lo <= tol {
            return Ok(mid);
        }
        let fmid = f(mid);
        if fmid == 0.0 {
            return Ok(mid);
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Err(ModelError::NoConvergence {
        what: "bisection",
        iterations: max_iter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_point_of_cosine() {
        // The Dottie number: u = cos(u) ≈ 0.739085.
        let fp = smallest_fixed_point(|u| u.cos(), 0.0, 0.0, 1.0, 1e-13, 10_000).unwrap();
        assert!((fp.value - 0.739_085_133_215_160_6).abs() < 1e-10);
    }

    #[test]
    fn fixed_point_picks_smallest_root() {
        // φ(u) = 1 − q + q·u² with q = 0.9 has fixed points u = 1/9·...:
        // u = q u² − u + 1 − q = 0 → roots u = 1 and u = (1−q)/q = 1/9.
        let q = 0.9;
        let fp =
            smallest_fixed_point(|u| 1.0 - q + q * u * u, 0.0, 0.0, 1.0, 1e-14, 100_000).unwrap();
        assert!(
            (fp.value - (1.0 - q) / q).abs() < 1e-10,
            "got {} expected {}",
            fp.value,
            (1.0 - q) / q
        );
    }

    #[test]
    fn fixed_point_trivial_root_when_subcritical() {
        // q below critical: only fixed point in [0,1] is u = 1.
        let q = 0.3;
        let fp =
            smallest_fixed_point(|u| 1.0 - q + q * u * u, 0.0, 0.0, 1.0, 1e-12, 100_000).unwrap();
        assert!((fp.value - 1.0).abs() < 1e-6, "got {}", fp.value);
    }

    #[test]
    fn fixed_point_near_critical_converges() {
        // Exactly at criticality (q such that φ'(1) = 1): 2q = 1.
        let q = 0.5 + 1e-6;
        let fp =
            smallest_fixed_point(|u| 1.0 - q + q * u * u, 0.0, 0.0, 1.0, 1e-12, 2_000_000).unwrap();
        let expected = (1.0 - q) / q;
        assert!((fp.value - expected).abs() < 1e-5, "got {}", fp.value);
    }

    #[test]
    fn bisect_linear() {
        let root = bisect(|x| 2.0 * x - 1.0, 0.0, 1.0, 1e-12, 200).unwrap();
        assert!((root - 0.5).abs() < 1e-10);
    }

    #[test]
    fn bisect_endpoint_roots() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12, 100).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12, 100).unwrap(), 1.0);
    }

    #[test]
    fn bisect_swapped_bracket() {
        let root = bisect(|x| x * x - 2.0, 2.0, 0.0, 1e-12, 200).unwrap();
        assert!((root - std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn bisect_rejects_same_sign() {
        let err = bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100).unwrap_err();
        assert!(matches!(err, ModelError::InvalidParameter { .. }));
    }
}
