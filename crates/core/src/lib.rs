//! # gossip-model
//!
//! Analytical fault-tolerance model for gossip-based reliable multicast,
//! reproducing **"On Modeling Fault Tolerance of Gossip-Based Reliable
//! Multicast Protocols"** (Fan, Cao, Wu, Raynal — ICPP 2008).
//!
//! The paper models one execution of a *general gossiping algorithm* —
//! each member, on first receipt of a message, draws a random fanout from
//! a distribution `P` and relays to that many uniformly chosen members —
//! as a **generalized random graph** (Newman–Strogatz–Watts generating
//! functions), with fail-stop crashes treated as **site percolation**
//! (Callaway et al.): a member is *nonfailed* ("occupied") with
//! probability `q`, independently.
//!
//! The model answers four questions:
//!
//! 1. **Reliability** `R(q, P)` — what fraction of nonfailed members
//!    receives the message in one execution? Answer: the relative size of
//!    the giant component of the percolated random graph
//!    ([`SitePercolation::reliability`], paper Eq. 4/11).
//! 2. **Critical point** — how many members may fail before gossip stops
//!    working at all? Answer: `q_c = 1 / G1'(1)` (paper Eq. 3;
//!    [`SitePercolation::critical_q`]); for Poisson fanout `q_c = 1/z`
//!    (Eq. 10).
//! 3. **Success of gossiping** — how many independent executions `t`
//!    make *every* nonfailed member receive the message with probability
//!    `p_s`? Answer: `t ≥ lg(1 − p_s) / lg(1 − p_r)` (Eq. 6;
//!    [`success::required_executions`]).
//! 4. **Design** — which mean fanout achieves a target reliability under
//!    a given failure ratio? Answer: `z = −ln(1 − S)/(qS)` for Poisson
//!    (Eq. 12; [`poisson_case::mean_fanout_for`]) and a bisection-based
//!    generalization for any scalable family ([`design`]).
//!
//! ## Quick example — the scenario API
//!
//! The recommended entry point is the unified [`scenario`] module: a
//! declarative [`Scenario`] evaluated by any [`Backend`] into a typed
//! [`Report`]. This crate hosts the exact generating-function layer
//! ([`AnalyticBackend`]); the graph, protocol, and netsim layers
//! implement the same trait in their own crates and the workspace-root
//! `gossip` crate re-exports all four side by side.
//!
//! ```
//! use gossip_model::{AnalyticBackend, Backend, FanoutSpec, Scenario, SweepGrid};
//!
//! // 1000 members, Poisson fanout with mean 4, 10% of members crash.
//! let scenario = Scenario::new(1000, FanoutSpec::poisson(4.0)).with_failure_ratio(0.9);
//! let report = AnalyticBackend.evaluate(&scenario).unwrap();
//! assert!((report.reliability - 0.9695).abs() < 1e-3); // Eq. 11
//! assert!((report.critical_q.unwrap() - 0.25).abs() < 1e-12); // Eq. 10
//!
//! // Grids fan over all cores with deterministic per-cell seeds.
//! let cells = SweepGrid::new(scenario)
//!     .over_failure_ratios(&[0.5, 0.7, 0.9])
//!     .run(&AnalyticBackend);
//! assert_eq!(cells.len(), 3);
//! ```
//!
//! Scenarios are serde-friendly: a `Scenario` (and a `Report`)
//! round-trips through `serde::json`, so experiment descriptions can
//! live in files and results can be archived as data.
//!
//! ## The model façade
//!
//! The underlying model object [`Gossip`] remains available for direct
//! analytical work:
//!
//! ```
//! use gossip_model::{Gossip, PoissonFanout};
//!
//! // 1000 members, Poisson fanout with mean 4, 10% of members crash.
//! let gossip = Gossip::new(1000, PoissonFanout::new(4.0), 0.9).unwrap();
//!
//! // One execution reaches ~97% of the nonfailed members...
//! let r = gossip.reliability().unwrap();
//! assert!((r - 0.9695).abs() < 1e-3);
//!
//! // ...and 2 executions make "everyone got it" 99.9%-probable.
//! let t = gossip.required_executions(0.999).unwrap();
//! assert_eq!(t, 2);
//! ```
//!
//! ## Crate layout
//!
//! * [`scenario`] — the unified `Scenario` → `Backend` → `Report` API:
//!   declarative experiment descriptions ([`FanoutSpec`],
//!   [`FailureSpec`], [`MembershipSpec`], [`ProtocolSpec`],
//!   [`LatencySpec`]), the object-safe [`Backend`] trait, the exact
//!   [`AnalyticBackend`], and the parallel [`SweepGrid`] runner.
//! * [`distribution`] — the [`FanoutDistribution`] trait (pmf, generating
//!   functions `G0`/`G1`, sampling) and eight implementations: Poisson,
//!   fixed, binomial, geometric, discrete-uniform, truncated power-law,
//!   empirical, and mixtures.
//! * [`percolation`] — the site-percolation solver: `u`, reliability,
//!   giant-component fraction, mean component size (Eq. 2), critical point
//!   (Eq. 3).
//! * [`success`] — the Bernoulli-trials calculus of Eqs. 5–6.
//! * [`design`] — inverse problems (required fanout, maximum tolerable
//!   failure ratio).
//! * [`poisson_case`] — §4.3 closed forms, including a Lambert-W solution
//!   of `S = 1 − e^{−zqS}`.
//! * [`model`] — the [`Gossip`] façade tying everything together.
//! * [`sweep`] — series generators used by the figure-reproduction
//!   binaries.
//! * [`baselines`] — the three related-work models of §2 (pbcast
//!   recurrence, SI epidemic, Kermarrec–Massoulié–Ganesh criterion),
//!   implemented so the paper's comparison is executable.
//! * [`loss`] — message loss as bond percolation, extending the paper's
//!   crash-only model (for Poisson: `R = 1 − e^{−z(1−ℓ)qR}`).
//! * [`solver`], [`series`], [`lambertw`] — numerical plumbing.

pub mod baselines;
pub mod design;
pub mod distribution;
pub mod error;
pub mod lambertw;
pub mod loss;
pub mod model;
pub mod percolation;
pub mod poisson_case;
pub mod scenario;
pub mod series;
pub mod solver;
pub mod success;
pub mod sweep;

pub use distribution::{
    BinomialFanout, EmpiricalFanout, FanoutDistribution, FixedFanout, GeometricFanout,
    MixtureFanout, PoissonFanout, PowerLawFanout, UniformFanout,
};
pub use error::ModelError;
pub use gossip_faults::{
    AdversarySpec, AdversaryStrategy, BurstySpec, ChurnSpec, FaultSpec, ZoneFailureSpec,
};
pub use gossip_topology::{OverlaySpec, PeerSelection, TopologySpec};
pub use gossip_traffic::{ArrivalSpec, BatchingSpec, TrafficReport, TrafficSpec};
pub use model::Gossip;
pub use percolation::SitePercolation;
pub use scenario::{
    AnalyticBackend, Backend, EngineSpec, FailureSpec, FanoutSpec, LatencySpec, MembershipSpec,
    ProtocolSpec, Report, Scenario, SweepCell, SweepGrid,
};

/// Default truncation/convergence tolerance used across the crate.
pub const DEFAULT_EPS: f64 = 1e-12;
