//! Message loss as bond percolation — an extension beyond the paper.
//!
//! The paper's model covers *node* failures only (site percolation); its
//! related-work section notes the LRG model "did not take message losses
//! … into consideration" but leaves loss out of its own analysis too.
//! The generating-function machinery extends naturally: if each message
//! is independently lost with probability `ℓ`, an edge of the gossip
//! graph *transmits* with probability `b = 1 − ℓ` (bond occupation), and
//! the self-consistency condition becomes
//!
//! ```text
//! u = (1 − b) + b·[(1 − q) + q·G1(u)],       R = 1 − G0(u).
//! ```
//!
//! For Poisson fanout this collapses to `R = 1 − e^{−z·b·q·R}` — loss
//! simply multiplies into the epidemic product `z·q`, so a deployment
//! can trade fanout against loss one-for-one. The integration tests
//! validate the formula against the simulator's loss model end to end.

use crate::distribution::FanoutDistribution;
use crate::error::ModelError;
use crate::solver::smallest_fixed_point;

/// Convergence tolerance for the joint fixed point.
const U_TOL: f64 = 1e-13;
/// Iteration budget (near-critical convergence is slow).
const U_MAX_ITER: usize = 4_000_000;

/// Site + bond percolation: nonfailed ratio `q` (nodes) and delivery
/// probability `b = 1 − loss` (edges).
#[derive(Clone, Copy, Debug)]
pub struct LossyGossip<'a, D: FanoutDistribution + ?Sized> {
    dist: &'a D,
    q: f64,
    loss: f64,
}

impl<'a, D: FanoutDistribution + ?Sized> LossyGossip<'a, D> {
    /// Creates the joint analysis for `q ∈ (0, 1]` and `loss ∈ [0, 1)`.
    pub fn new(dist: &'a D, q: f64, loss: f64) -> Result<Self, ModelError> {
        if !(q.is_finite() && q > 0.0 && q <= 1.0) {
            return Err(ModelError::InvalidParameter {
                name: "q",
                value: q,
                requirement: "nonfailed member ratio must lie in (0, 1]",
            });
        }
        if !(loss.is_finite() && (0.0..1.0).contains(&loss)) {
            return Err(ModelError::InvalidParameter {
                name: "loss",
                value: loss,
                requirement: "message loss probability must lie in [0, 1)",
            });
        }
        Ok(Self { dist, q, loss })
    }

    /// Delivery probability `b = 1 − loss`.
    #[inline]
    pub fn delivery(&self) -> f64 {
        1.0 - self.loss
    }

    /// Critical surface: the giant component exists iff
    /// `b·q·G1'(1) > 1`. Returns the critical loss probability at this
    /// `q` (`None` when even lossless transmission cannot percolate).
    pub fn critical_loss(&self) -> Option<f64> {
        let g1p = self.dist.g1_prime_at_one();
        if g1p <= 0.0 {
            return None;
        }
        let b_crit = 1.0 / (self.q * g1p);
        if b_crit > 1.0 {
            None // subcritical even at zero loss
        } else {
            Some(1.0 - b_crit)
        }
    }

    /// Whether the configured `(q, loss)` lies above the threshold.
    pub fn is_supercritical(&self) -> bool {
        self.delivery() * self.q * self.dist.g1_prime_at_one() > 1.0
    }

    /// Solves `u = (1 − b) + b[(1 − q) + q·G1(u)]` for the smallest root.
    pub fn u(&self) -> Result<f64, ModelError> {
        if !self.is_supercritical() {
            return Ok(1.0);
        }
        let b = self.delivery();
        let q = self.q;
        let fp = smallest_fixed_point(
            |u| (1.0 - b) + b * ((1.0 - q) + q * self.dist.g1(u)),
            0.0,
            0.0,
            1.0,
            U_TOL,
            U_MAX_ITER,
        )?;
        Ok(fp.value)
    }

    /// Reliability under crashes *and* loss: the probability that a
    /// nonfailed member receives the message, `1 − G0(u)`.
    pub fn reliability(&self) -> Result<f64, ModelError> {
        let u = self.u()?;
        Ok((1.0 - self.dist.g0(u)).clamp(0.0, 1.0))
    }
}

/// Poisson closed form: the root of `R = 1 − e^{−z·(1−loss)·q·R}` — loss
/// folds into the epidemic product.
pub fn poisson_reliability_with_loss(z: f64, q: f64, loss: f64) -> Result<f64, ModelError> {
    if !(loss.is_finite() && (0.0..1.0).contains(&loss)) {
        return Err(ModelError::InvalidParameter {
            name: "loss",
            value: loss,
            requirement: "message loss probability must lie in [0, 1)",
        });
    }
    crate::poisson_case::reliability(z * (1.0 - loss), q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{FixedFanout, PoissonFanout};
    use crate::percolation::SitePercolation;

    #[test]
    fn zero_loss_reduces_to_site_percolation() {
        let d = PoissonFanout::new(4.0);
        for &q in &[0.5, 0.9, 1.0] {
            let lossy = LossyGossip::new(&d, q, 0.0).unwrap().reliability().unwrap();
            let site = SitePercolation::new(&d, q).unwrap().reliability().unwrap();
            assert!((lossy - site).abs() < 1e-10, "q = {q}: {lossy} vs {site}");
        }
    }

    #[test]
    fn poisson_loss_folds_into_product() {
        // Generic joint solver must match the closed form R = f(z·b·q).
        let d = PoissonFanout::new(5.0);
        for &(q, loss) in &[(0.9, 0.1), (0.8, 0.3), (1.0, 0.5), (0.6, 0.2)] {
            let generic = LossyGossip::new(&d, q, loss)
                .unwrap()
                .reliability()
                .unwrap();
            let closed = poisson_reliability_with_loss(5.0, q, loss).unwrap();
            assert!(
                (generic - closed).abs() < 1e-8,
                "q={q}, ℓ={loss}: generic {generic} vs closed {closed}"
            );
        }
    }

    #[test]
    fn loss_fanout_equivalence() {
        // z(1−ℓ) at zero loss ≡ z at loss ℓ (Poisson only).
        let with_loss = poisson_reliability_with_loss(6.0, 0.9, 0.25).unwrap();
        let thinned = crate::poisson_case::reliability(4.5, 0.9).unwrap();
        assert!((with_loss - thinned).abs() < 1e-12);
    }

    #[test]
    fn critical_loss_surface() {
        // Po(4), q = 0.5: b_crit = 1/(0.5·4) = 0.5 → loss_crit = 0.5.
        let d = PoissonFanout::new(4.0);
        let m = LossyGossip::new(&d, 0.5, 0.0).unwrap();
        assert!((m.critical_loss().unwrap() - 0.5).abs() < 1e-12);
        // Just below the critical loss: alive; above: dead.
        let alive = LossyGossip::new(&d, 0.5, 0.45).unwrap();
        assert!(alive.is_supercritical());
        assert!(alive.reliability().unwrap() > 0.0);
        let dead = LossyGossip::new(&d, 0.5, 0.55).unwrap();
        assert!(!dead.is_supercritical());
        assert_eq!(dead.reliability().unwrap(), 0.0);
    }

    #[test]
    fn critical_loss_none_when_hopeless() {
        // Po(1.5) at q = 0.5: even lossless zq = 0.75 < 1.
        let d = PoissonFanout::new(1.5);
        let m = LossyGossip::new(&d, 0.5, 0.0).unwrap();
        assert_eq!(m.critical_loss(), None);
        // Fixed(1) never percolates at all.
        let f1 = FixedFanout::new(1);
        assert_eq!(
            LossyGossip::new(&f1, 1.0, 0.0).unwrap().critical_loss(),
            None
        );
    }

    #[test]
    fn reliability_monotone_in_loss() {
        let d = PoissonFanout::new(4.0);
        let mut last = 1.0;
        for i in 0..8 {
            let loss = i as f64 * 0.1;
            let r = LossyGossip::new(&d, 0.9, loss)
                .unwrap()
                .reliability()
                .unwrap();
            assert!(r <= last + 1e-12, "loss {loss}: R must fall");
            last = r;
        }
    }

    #[test]
    fn rejects_bad_loss() {
        let d = PoissonFanout::new(3.0);
        assert!(LossyGossip::new(&d, 0.9, 1.0).is_err());
        assert!(LossyGossip::new(&d, 0.9, -0.1).is_err());
        assert!(poisson_reliability_with_loss(3.0, 0.9, 1.0).is_err());
    }
}
