//! The success-of-gossiping calculus (paper §4.2(2), Eqs. 5–6).
//!
//! One execution of the gossip algorithm reaches a given nonfailed member
//! with probability `p_r = R(q, P)`. The paper treats `t` repeated,
//! independent executions as Bernoulli trials: the number of executions
//! in which the member receives the message is `X ~ B(t, p_r)`, so
//!
//! * `Pr(member reached at least once) = P(X ≥ 1) = 1 − (1 − p_r)^t`
//!   (Eq. 5), and
//! * to push that above a target `p_s`, run
//!   `t ≥ lg(1 − p_s) / lg(1 − p_r)` executions (Eq. 6).
//!
//! Figures 6/7 use the same distribution at the *group* level: a
//! simulation of 20 executions succeeds `X` times with `X ~ B(20, p_r)`.

use gossip_stats::binomial::Binomial;

use crate::error::ModelError;

/// Probability that a member is reached at least once across `t`
/// independent executions, `1 − (1 − p_r)^t` (paper Eq. 5).
pub fn success_probability(p_r: f64, t: u32) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p_r),
        "per-execution reliability must be in [0,1], got {p_r}"
    );
    1.0 - (1.0 - p_r).powi(t as i32)
}

/// Minimum number of executions `t` with `1 − (1 − p_r)^t ≥ p_s`
/// (paper Eq. 6: `t ≥ lg(1 − p_s)/lg(1 − p_r)`).
///
/// Errors when `p_r = 0` (no execution ever succeeds) while `p_s > 0`.
pub fn required_executions(p_r: f64, p_s: f64) -> Result<u32, ModelError> {
    if !(0.0..=1.0).contains(&p_r) || !p_r.is_finite() {
        return Err(ModelError::InvalidParameter {
            name: "p_r",
            value: p_r,
            requirement: "per-execution reliability must lie in [0, 1]",
        });
    }
    if !(0.0..1.0).contains(&p_s) || !p_s.is_finite() {
        return Err(ModelError::InvalidParameter {
            name: "p_s",
            value: p_s,
            requirement: "success target must lie in [0, 1)",
        });
    }
    if p_s == 0.0 {
        return Ok(0);
    }
    if p_r == 0.0 {
        return Err(ModelError::Unachievable {
            what: "success target with zero per-execution reliability",
        });
    }
    if p_r == 1.0 {
        return Ok(1);
    }
    let t = (1.0 - p_s).ln() / (1.0 - p_r).ln();
    // Guard the ceil against floating-point overshoot at integer t.
    let t_ceil = t.ceil();
    let t_int = if (t_ceil - t) > 1.0 - 1e-9 && success_probability(p_r, (t_ceil as u32) - 1) >= p_s
    {
        t_ceil as u32 - 1
    } else {
        t_ceil as u32
    };
    Ok(t_int.max(1))
}

/// The distribution of the success count `X` over `t` executions:
/// `X ~ B(t, p_r)` — the analysis curve drawn in Figs. 6 and 7.
pub fn success_count_distribution(t: u32, p_r: f64) -> Binomial {
    Binomial::new(t as u64, p_r)
}

/// Expected number of executions until the first success (geometric
/// mean), `1 / p_r`. Companion metric to [`required_executions`].
pub fn expected_executions_to_success(p_r: f64) -> Result<f64, ModelError> {
    if !(0.0..=1.0).contains(&p_r) || p_r == 0.0 {
        return Err(ModelError::InvalidParameter {
            name: "p_r",
            value: p_r,
            requirement: "per-execution reliability must lie in (0, 1]",
        });
    }
    Ok(1.0 / p_r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq5_basic_values() {
        assert_eq!(success_probability(0.5, 1), 0.5);
        assert!((success_probability(0.5, 2) - 0.75).abs() < 1e-15);
        assert_eq!(success_probability(0.0, 10), 0.0);
        assert_eq!(success_probability(1.0, 1), 1.0);
        assert_eq!(success_probability(0.7, 0), 0.0);
    }

    #[test]
    fn paper_worked_example() {
        // §5.2: p_r = 0.967, p_s = 0.999 → "t should be greater than
        // three", i.e. t = 3 suffices: 1 − 0.033³ ≈ 0.999964 ≥ 0.999.
        let t = required_executions(0.967, 0.999).unwrap();
        assert_eq!(t, 3);
        assert!(success_probability(0.967, 3) >= 0.999);
        assert!(success_probability(0.967, 2) < 0.999);
    }

    #[test]
    fn fig3_series_shape() {
        // Fig. 3: required t vs reliability S at p_s = 0.999; t decreases
        // with S and reaches 1 only at very high S.
        let mut prev = u32::MAX;
        for &s in &[0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.999] {
            let t = required_executions(s, 0.999).unwrap();
            assert!(t <= prev, "t must be non-increasing in S");
            prev = t;
        }
        // Known endpoints: S = 0.2 → t = lg(0.001)/lg(0.8) ≈ 30.9 → 31.
        assert_eq!(required_executions(0.2, 0.999).unwrap(), 31);
        assert_eq!(required_executions(0.999, 0.999).unwrap(), 1);
    }

    #[test]
    fn required_executions_edges() {
        assert_eq!(required_executions(0.5, 0.0).unwrap(), 0);
        assert_eq!(required_executions(1.0, 0.9).unwrap(), 1);
        assert!(required_executions(0.0, 0.9).is_err());
        assert!(required_executions(-0.1, 0.9).is_err());
        assert!(required_executions(0.5, 1.0).is_err());
    }

    #[test]
    fn required_executions_achieves_target() {
        for &pr in &[0.1, 0.3, 0.6, 0.9, 0.967] {
            for &ps in &[0.5, 0.9, 0.99, 0.999, 0.99999] {
                let t = required_executions(pr, ps).unwrap();
                assert!(
                    success_probability(pr, t) >= ps - 1e-12,
                    "t = {t} misses target: pr={pr}, ps={ps}"
                );
                if t > 1 {
                    assert!(
                        success_probability(pr, t - 1) < ps,
                        "t = {t} not minimal: pr={pr}, ps={ps}"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_integer_boundary() {
        // p_r = 0.9, p_s = 0.99: t = ln(0.01)/ln(0.1) = 2 exactly.
        let t = required_executions(0.9, 0.99).unwrap();
        assert_eq!(t, 2);
        assert!(success_probability(0.9, 2) >= 0.99);
    }

    #[test]
    fn success_count_distribution_matches_eq5() {
        let b = success_count_distribution(20, 0.967);
        // P(X >= 1) must equal Eq. 5.
        assert!((b.sf(1) - success_probability(0.967, 20)).abs() < 1e-12);
        assert_eq!(b.n(), 20);
    }

    #[test]
    fn expected_executions() {
        assert!((expected_executions_to_success(0.5).unwrap() - 2.0).abs() < 1e-15);
        assert!(expected_executions_to_success(0.0).is_err());
    }
}
