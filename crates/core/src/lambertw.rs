//! The Lambert W function (real branches).
//!
//! The Poisson reliability fixed point `S = 1 − e^{−aS}` (paper Eq. 11
//! with `a = z·q`) has the closed-form solution `S = 1 + W0(−a·e^{−a})/a`
//! for `a > 1`. Having the closed form lets [`crate::poisson_case`] verify
//! the generic fixed-point solver to near machine precision — the kind of
//! cross-check MATLAB gave the paper's authors for free.

/// Principal branch `W0(x)` for `x ≥ −1/e`: the solution `w ≥ −1` of
/// `w·e^w = x`.
///
/// Halley iteration from a piecewise initial guess; converges to ~1e-15
/// in a handful of steps.
pub fn lambert_w0(x: f64) -> f64 {
    assert!(
        x >= -std::f64::consts::E.recip() - 1e-15,
        "W0 requires x >= -1/e, got {x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    // Initial guess.
    let mut w = if x < -0.25 {
        // Near the branch point −1/e: series in p = √(2(ex + 1)).
        let p = (2.0 * (std::f64::consts::E * x + 1.0)).max(0.0).sqrt();
        -1.0 + p - p * p / 3.0 + 11.0 * p * p * p / 72.0
    } else if x < 1.0 {
        // Small x: W ≈ x(1 − x + 1.5x²).
        x * (1.0 - x + 1.5 * x * x)
    } else {
        // Large x: W ≈ ln x − ln ln x.
        let l = x.ln();
        l - l.ln().max(0.0)
    };
    halley(&mut w, x);
    w
}

/// Secondary real branch `W−1(x)` for `x ∈ [−1/e, 0)`: the solution
/// `w ≤ −1` of `w·e^w = x`.
pub fn lambert_w_minus1(x: f64) -> f64 {
    assert!(
        (-std::f64::consts::E.recip() - 1e-15..0.0).contains(&x),
        "W-1 requires -1/e <= x < 0, got {x}"
    );
    // Initial guess: near branch point use the same series with −p;
    // toward 0⁻ use the asymptotic ln(−x) − ln(−ln(−x)).
    let mut w = if x < -0.25 {
        let p = (2.0 * (std::f64::consts::E * x + 1.0)).max(0.0).sqrt();
        -1.0 - p - p * p / 3.0 - 11.0 * p * p * p / 72.0
    } else {
        let l = (-x).ln();
        l - (-l).ln()
    };
    halley(&mut w, x);
    w
}

/// Halley's method on `f(w) = w·e^w − x`.
fn halley(w: &mut f64, x: f64) {
    for _ in 0..60 {
        let ew = w.exp();
        let f = *w * ew - x;
        if f == 0.0 {
            return;
        }
        let w1 = *w + 1.0;
        let denom = ew * w1 - (*w + 2.0) * f / (2.0 * w1);
        let step = f / denom;
        *w -= step;
        if step.abs() <= 1e-16 * (1.0 + w.abs()) {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defining_eq(w: f64, x: f64) -> f64 {
        (w * w.exp() - x).abs()
    }

    #[test]
    fn w0_known_values() {
        // W0(0) = 0, W0(e) = 1, W0(1) = Ω ≈ 0.567143.
        assert_eq!(lambert_w0(0.0), 0.0);
        assert!((lambert_w0(std::f64::consts::E) - 1.0).abs() < 1e-14);
        assert!((lambert_w0(1.0) - 0.567_143_290_409_783_8).abs() < 1e-14);
    }

    #[test]
    fn w0_satisfies_defining_equation() {
        for &x in &[-0.36, -0.3, -0.1, 0.001, 0.5, 2.0, 10.0, 1e6] {
            let w = lambert_w0(x);
            assert!(
                defining_eq(w, x) < 1e-12 * (1.0 + x.abs()),
                "x = {x}: residual {}",
                defining_eq(w, x)
            );
            assert!(w >= -1.0 - 1e-12, "W0 must stay above -1");
        }
    }

    #[test]
    fn w0_branch_point() {
        let x = -std::f64::consts::E.recip();
        let w = lambert_w0(x);
        assert!((w + 1.0).abs() < 1e-6, "W0(-1/e) = {w}, expected -1");
    }

    #[test]
    fn w_minus1_satisfies_defining_equation() {
        for &x in &[-0.367, -0.3, -0.2, -0.05, -1e-4] {
            let w = lambert_w_minus1(x);
            assert!(
                defining_eq(w, x) < 1e-12,
                "x = {x}: w = {w}, residual {}",
                defining_eq(w, x)
            );
            assert!(w <= -1.0 + 1e-9, "W-1 must stay below -1, got {w}");
        }
    }

    #[test]
    fn branches_differ() {
        let x = -0.2;
        let w0 = lambert_w0(x);
        let wm1 = lambert_w_minus1(x);
        assert!(w0 > -1.0 && wm1 < -1.0);
        assert!((w0 - wm1).abs() > 0.5);
    }

    #[test]
    fn giant_component_via_w0() {
        // S = 1 + W0(−a e^{−a})/a solves S = 1 − e^{−aS}; check at a = 2.
        let a = 2.0f64;
        let s = 1.0 + lambert_w0(-a * (-a).exp()) / a;
        assert!((s - (1.0 - (-a * s).exp())).abs() < 1e-12);
        assert!((s - 0.796_812_13).abs() < 1e-6, "S(2) = {s}");
    }

    #[test]
    #[should_panic(expected = "W0 requires")]
    fn w0_rejects_below_branch_point() {
        lambert_w0(-0.5);
    }

    #[test]
    #[should_panic(expected = "W-1 requires")]
    fn w_minus1_rejects_positive() {
        lambert_w_minus1(0.1);
    }
}
