//! Empirical fanout from an explicit probability table.
//!
//! The escape hatch that makes the model's "arbitrary distribution" claim
//! literal: hand it any finite pmf — e.g. fanouts measured from a deployed
//! system's logs — and the full analysis applies.

use gossip_stats::alias::AliasTable;
use gossip_stats::rng::Xoshiro256StarStar;

use super::FanoutDistribution;

/// Fanout distribution given by an explicit table: outcome `k` has
/// probability `weights[k] / Σ weights`.
#[derive(Clone, Debug)]
pub struct EmpiricalFanout {
    pmf: Vec<f64>,
    sampler: AliasTable,
}

impl EmpiricalFanout {
    /// Builds the distribution from non-negative (not necessarily
    /// normalized) weights indexed by outcome. Panics on empty input,
    /// negative weights, or zero total mass.
    pub fn new(weights: &[f64]) -> Self {
        let total: f64 = weights.iter().sum();
        assert!(
            total.is_finite() && total > 0.0,
            "empirical fanout needs positive total weight"
        );
        let pmf: Vec<f64> = weights.iter().map(|&w| w / total).collect();
        let sampler = AliasTable::new(&pmf);
        Self { pmf, sampler }
    }

    /// Builds the distribution from observed fanout samples.
    pub fn from_samples(samples: &[usize]) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        let max = *samples.iter().max().expect("non-empty");
        let mut weights = vec![0.0f64; max + 1];
        for &s in samples {
            weights[s] += 1.0;
        }
        Self::new(&weights)
    }

    /// The normalized pmf table.
    pub fn probabilities(&self) -> &[f64] {
        &self.pmf
    }
}

impl FanoutDistribution for EmpiricalFanout {
    fn pmf(&self, k: usize) -> f64 {
        self.pmf.get(k).copied().unwrap_or(0.0)
    }

    fn truncation_point(&self, _eps: f64) -> usize {
        self.pmf.len() - 1
    }

    fn sample(&self, rng: &mut Xoshiro256StarStar) -> usize {
        self.sampler.sample(rng)
    }

    fn label(&self) -> String {
        format!("Empirical({} outcomes)", self.pmf.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::invariants::check_distribution;

    #[test]
    fn invariants_hold() {
        check_distribution(&EmpiricalFanout::new(&[0.0, 0.2, 0.5, 0.3]), 0.05);
        check_distribution(&EmpiricalFanout::new(&[1.0, 1.0, 1.0, 1.0, 1.0]), 0.05);
    }

    #[test]
    fn normalizes_weights() {
        let d = EmpiricalFanout::new(&[2.0, 6.0, 2.0]);
        assert!((d.pmf(0) - 0.2).abs() < 1e-15);
        assert!((d.pmf(1) - 0.6).abs() < 1e-15);
        assert!((d.pmf(2) - 0.2).abs() < 1e-15);
        assert_eq!(d.pmf(3), 0.0);
        assert!((d.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_samples_matches_frequencies() {
        let samples = [1usize, 1, 2, 2, 2, 5];
        let d = EmpiricalFanout::from_samples(&samples);
        assert!((d.pmf(1) - 2.0 / 6.0).abs() < 1e-15);
        assert!((d.pmf(2) - 3.0 / 6.0).abs() < 1e-15);
        assert!((d.pmf(5) - 1.0 / 6.0).abs() < 1e-15);
        assert_eq!(d.pmf(0), 0.0);
        assert_eq!(d.truncation_point(1e-9), 5);
    }

    #[test]
    fn matches_paper_style_mixed_table() {
        // A bimodal fanout: half the nodes relay to 1, half to 8 — mean 4.5
        // but very different percolation behaviour than Po(4.5). The model
        // distinguishes them through G1'(1).
        let d = EmpiricalFanout::new(&[0.0, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.5]);
        assert!((d.mean() - 4.5).abs() < 1e-12);
        // E[K(K-1)]/E[K] = (0.5·0 + 0.5·56)/4.5 = 28/4.5.
        assert!((d.g1_prime_at_one() - 28.0 / 4.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn rejects_zero_mass() {
        EmpiricalFanout::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn rejects_empty_samples() {
        EmpiricalFanout::from_samples(&[]);
    }
}
