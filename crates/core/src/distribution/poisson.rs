//! Poisson fanout — the paper's case-study distribution (§4.3).

use gossip_stats::poisson::Poisson;
use gossip_stats::rng::Xoshiro256StarStar;

use super::FanoutDistribution;

/// Poisson-distributed fanout `Po(z)` with mean `z`.
///
/// Closed forms: `G0(x) = G1(x) = e^{z(x−1)}` (paper Eqs. 8–9), so the
/// critical nonfailed ratio is `q_c = 1/z` (Eq. 10) and the reliability
/// solves `S = 1 − e^{−zqS}` (Eq. 11).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PoissonFanout {
    z: f64,
    inner: Poisson,
}

impl PoissonFanout {
    /// Creates a Poisson fanout with mean `z ≥ 0`.
    pub fn new(z: f64) -> Self {
        Self {
            z,
            inner: Poisson::new(z),
        }
    }

    /// The mean fanout `z`.
    #[inline]
    pub fn z(&self) -> f64 {
        self.z
    }
}

impl FanoutDistribution for PoissonFanout {
    fn pmf(&self, k: usize) -> f64 {
        self.inner.pmf(k as u64)
    }

    fn truncation_point(&self, eps: f64) -> usize {
        self.inner.truncation_point(eps) as usize
    }

    fn mean(&self) -> f64 {
        self.z
    }

    fn g0(&self, x: f64) -> f64 {
        (self.z * (x - 1.0)).exp()
    }

    fn g0_prime(&self, x: f64) -> f64 {
        self.z * (self.z * (x - 1.0)).exp()
    }

    fn g0_double_prime(&self, x: f64) -> f64 {
        self.z * self.z * (self.z * (x - 1.0)).exp()
    }

    fn g1(&self, x: f64) -> f64 {
        // G1 = G0'/G0'(1) = e^{z(x−1)} — the hallmark of the Poisson case.
        (self.z * (x - 1.0)).exp()
    }

    fn g1_prime_at_one(&self) -> f64 {
        self.z
    }

    fn sample(&self, rng: &mut Xoshiro256StarStar) -> usize {
        self.inner.sample(rng) as usize
    }

    fn label(&self) -> String {
        format!("Po({})", self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::invariants::check_distribution;

    #[test]
    fn invariants_hold() {
        for &z in &[0.5, 1.1, 4.0, 6.7] {
            check_distribution(&PoissonFanout::new(z), 0.05);
        }
    }

    #[test]
    fn closed_forms_match_series_defaults() {
        let d = PoissonFanout::new(4.0);
        let kmax = d.truncation_point(1e-14);
        for &x in &[0.0, 0.3, 0.7, 1.0] {
            let series_g0 = crate::series::eval_g0(|k| d.pmf(k), x, kmax);
            assert!(
                (d.g0(x) - series_g0).abs() < 1e-10,
                "x={x}: {} vs {}",
                d.g0(x),
                series_g0
            );
            let series_g0p = crate::series::eval_g0_prime(|k| d.pmf(k), x, kmax);
            assert!((d.g0_prime(x) - series_g0p).abs() < 1e-9);
        }
    }

    #[test]
    fn g1_equals_g0() {
        let d = PoissonFanout::new(2.5);
        for &x in &[0.1, 0.5, 0.9] {
            assert!((d.g1(x) - d.g0(x)).abs() < 1e-15);
        }
        assert!((d.g1_prime_at_one() - 2.5).abs() < 1e-15);
    }

    #[test]
    fn zero_mean_degenerate() {
        let d = PoissonFanout::new(0.0);
        assert_eq!(d.pmf(0), 1.0);
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.g1(0.5), 1.0); // e^0 — closed form, consistent limit
        let mut rng = Xoshiro256StarStar::new(1);
        assert_eq!(d.sample(&mut rng), 0);
    }
}
