//! Truncated power-law (zeta) fanout.
//!
//! The paper motivates arbitrary fanout distributions with "gossiping
//! tailored for different applications over various types of overlays or
//! physical topologies" (§2) — scale-free overlays being the canonical
//! case where node capacities, and hence sensible fanouts, follow a power
//! law. `P(F = k) ∝ k^{−α}` for `k ∈ [kmin, kmax]`.

use gossip_stats::alias::AliasTable;
use gossip_stats::rng::Xoshiro256StarStar;

use super::FanoutDistribution;

/// Power-law fanout `P(F = k) ∝ k^{−α}` on the inclusive support
/// `[kmin, kmax]`.
#[derive(Clone, Debug)]
pub struct PowerLawFanout {
    alpha: f64,
    kmin: usize,
    kmax: usize,
    /// Normalized pmf over `0..=kmax` (zeros below `kmin`).
    pmf: Vec<f64>,
    sampler: AliasTable,
}

impl PowerLawFanout {
    /// Creates a truncated power law with exponent `α > 0` on
    /// `[kmin, kmax]`, `1 ≤ kmin ≤ kmax`.
    pub fn new(alpha: f64, kmin: usize, kmax: usize) -> Self {
        assert!(
            alpha > 0.0 && alpha.is_finite(),
            "alpha must be positive, got {alpha}"
        );
        assert!(kmin >= 1, "kmin must be >= 1 (k^-alpha undefined at 0)");
        assert!(kmin <= kmax, "need kmin <= kmax, got [{kmin}, {kmax}]");
        let mut weights = vec![0.0f64; kmax + 1];
        let mut total = 0.0;
        for (k, w) in weights.iter_mut().enumerate().take(kmax + 1).skip(kmin) {
            *w = (k as f64).powf(-alpha);
            total += *w;
        }
        let pmf: Vec<f64> = weights.iter().map(|&w| w / total).collect();
        let sampler = AliasTable::new(&pmf);
        Self {
            alpha,
            kmin,
            kmax,
            pmf,
            sampler,
        }
    }

    /// Exponent `α`.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Support bounds `(kmin, kmax)`.
    #[inline]
    pub fn support(&self) -> (usize, usize) {
        (self.kmin, self.kmax)
    }
}

impl FanoutDistribution for PowerLawFanout {
    fn pmf(&self, k: usize) -> f64 {
        self.pmf.get(k).copied().unwrap_or(0.0)
    }

    fn truncation_point(&self, _eps: f64) -> usize {
        self.kmax
    }

    fn sample(&self, rng: &mut Xoshiro256StarStar) -> usize {
        self.sampler.sample(rng)
    }

    fn label(&self) -> String {
        format!("PL(α={}, [{}, {}])", self.alpha, self.kmin, self.kmax)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::invariants::check_distribution;

    #[test]
    fn invariants_hold() {
        check_distribution(&PowerLawFanout::new(2.5, 1, 50), 0.1);
        check_distribution(&PowerLawFanout::new(1.5, 2, 30), 0.1);
    }

    #[test]
    fn pmf_follows_power_law_ratios() {
        let d = PowerLawFanout::new(2.0, 1, 100);
        // p(2)/p(1) = 2^{-2} = 0.25.
        assert!((d.pmf(2) / d.pmf(1) - 0.25).abs() < 1e-12);
        // p(4)/p(2) = (4/2)^{-2} = 0.25.
        assert!((d.pmf(4) / d.pmf(2) - 0.25).abs() < 1e-12);
        assert_eq!(d.pmf(0), 0.0);
        assert_eq!(d.pmf(101), 0.0);
    }

    #[test]
    fn heavy_tail_raises_excess_degree() {
        // At the same mean, a power law has a (much) larger mean excess
        // degree than Poisson — the property that makes scale-free gossip
        // robust. Compare G1'(1).
        let pl = PowerLawFanout::new(2.2, 1, 200);
        let mean = pl.mean();
        let po = crate::distribution::PoissonFanout::new(mean);
        assert!(
            pl.g1_prime_at_one() > po.g1_prime_at_one(),
            "power law G1'(1) = {} should exceed Poisson {}",
            pl.g1_prime_at_one(),
            po.g1_prime_at_one()
        );
    }

    #[test]
    fn samples_respect_support() {
        let d = PowerLawFanout::new(2.0, 3, 12);
        let mut rng = Xoshiro256StarStar::new(21);
        for _ in 0..5_000 {
            let s = d.sample(&mut rng);
            assert!((3..=12).contains(&s), "sample {s} outside support");
        }
    }

    #[test]
    #[should_panic(expected = "kmin must be >= 1")]
    fn rejects_zero_kmin() {
        PowerLawFanout::new(2.0, 0, 10);
    }
}
