//! Binomial fanout `B(m, p)`.
//!
//! Natural when each member holds a view of `m` candidates and gossips to
//! each independently with probability `p` — the per-link-probability
//! style of gossip used e.g. by probabilistic flooding. Closed forms:
//! `G0(x) = (1 − p + px)^m`, `G1(x) = (1 − p + px)^{m−1}`.

use gossip_stats::binomial::Binomial;
use gossip_stats::rng::Xoshiro256StarStar;

use super::FanoutDistribution;

/// Binomially distributed fanout with `m` trials and per-trial probability
/// `p`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BinomialFanout {
    m: usize,
    p: f64,
    inner: Binomial,
}

impl BinomialFanout {
    /// Creates `B(m, p)`. Panics if `p ∉ [0, 1]`.
    pub fn new(m: usize, p: f64) -> Self {
        Self {
            m,
            p,
            inner: Binomial::new(m as u64, p),
        }
    }

    /// Number of trials (view size).
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Per-trial gossip probability.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl FanoutDistribution for BinomialFanout {
    fn pmf(&self, k: usize) -> f64 {
        self.inner.pmf(k as u64)
    }

    fn truncation_point(&self, _eps: f64) -> usize {
        self.m
    }

    fn mean(&self) -> f64 {
        self.m as f64 * self.p
    }

    fn g0(&self, x: f64) -> f64 {
        (1.0 - self.p + self.p * x).powi(self.m as i32)
    }

    fn g0_prime(&self, x: f64) -> f64 {
        if self.m == 0 {
            return 0.0;
        }
        self.m as f64 * self.p * (1.0 - self.p + self.p * x).powi(self.m as i32 - 1)
    }

    fn g0_double_prime(&self, x: f64) -> f64 {
        if self.m < 2 {
            return 0.0;
        }
        (self.m * (self.m - 1)) as f64
            * self.p
            * self.p
            * (1.0 - self.p + self.p * x).powi(self.m as i32 - 2)
    }

    fn g1(&self, x: f64) -> f64 {
        if self.m == 0 || self.p == 0.0 {
            return 0.0;
        }
        (1.0 - self.p + self.p * x).powi(self.m as i32 - 1)
    }

    fn g1_prime_at_one(&self) -> f64 {
        if self.m == 0 {
            return 0.0;
        }
        (self.m - 1) as f64 * self.p
    }

    fn sample(&self, rng: &mut Xoshiro256StarStar) -> usize {
        self.inner.sample(rng) as usize
    }

    fn label(&self) -> String {
        format!("Bin({}, {})", self.m, self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::invariants::check_distribution;

    #[test]
    fn invariants_hold() {
        check_distribution(&BinomialFanout::new(10, 0.4), 0.05);
        check_distribution(&BinomialFanout::new(50, 0.08), 0.05);
        check_distribution(&BinomialFanout::new(3, 1.0), 1e-9);
    }

    #[test]
    fn closed_forms_match_series() {
        let d = BinomialFanout::new(12, 0.3);
        let kmax = 12;
        for &x in &[0.0, 0.4, 1.0] {
            let s = crate::series::eval_g0(|k| d.pmf(k), x, kmax);
            assert!((d.g0(x) - s).abs() < 1e-12, "x = {x}");
            let sp = crate::series::eval_g0_prime(|k| d.pmf(k), x, kmax);
            assert!((d.g0_prime(x) - sp).abs() < 1e-11, "x = {x}");
        }
        assert!((d.g1_prime_at_one() - 11.0 * 0.3).abs() < 1e-12);
    }

    #[test]
    fn poisson_limit() {
        // B(m, z/m) → Po(z) as m grows: generating functions converge.
        let z = 3.0;
        let b = BinomialFanout::new(3000, z / 3000.0);
        let p = crate::distribution::PoissonFanout::new(z);
        for &x in &[0.2, 0.6, 0.9] {
            assert!(
                (b.g0(x) - p.g0(x)).abs() < 1e-3,
                "x = {x}: {} vs {}",
                b.g0(x),
                p.g0(x)
            );
        }
    }

    #[test]
    fn degenerate_m_zero() {
        let d = BinomialFanout::new(0, 0.5);
        assert_eq!(d.pmf(0), 1.0);
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.g1(0.5), 0.0);
    }
}
