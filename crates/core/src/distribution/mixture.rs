//! Finite mixtures of fanout distributions.
//!
//! Heterogeneous deployments — e.g. 90% constrained mobile nodes with
//! small fanout plus 10% well-connected relays with large fanout — are
//! mixtures. Generating functions mix linearly
//! (`G0 = Σ w_i · G0_i`), so the percolation analysis extends for free.

use gossip_stats::rng::Xoshiro256StarStar;

use super::FanoutDistribution;

/// A weighted mixture of fanout distributions.
pub struct MixtureFanout {
    components: Vec<(f64, Box<dyn FanoutDistribution>)>,
}

impl MixtureFanout {
    /// Builds a mixture from `(weight, distribution)` pairs; weights are
    /// normalized to sum to 1. Panics on empty input or non-positive total
    /// weight.
    pub fn new(components: Vec<(f64, Box<dyn FanoutDistribution>)>) -> Self {
        assert!(
            !components.is_empty(),
            "mixture needs at least one component"
        );
        let total: f64 = components.iter().map(|(w, _)| *w).sum();
        assert!(
            total.is_finite() && total > 0.0,
            "mixture needs positive total weight"
        );
        for (w, _) in &components {
            assert!(*w >= 0.0, "mixture weights must be non-negative, got {w}");
        }
        let components = components
            .into_iter()
            .map(|(w, d)| (w / total, d))
            .collect();
        Self { components }
    }

    /// Number of mixture components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True if the mixture has no components (impossible by construction).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

impl FanoutDistribution for MixtureFanout {
    fn pmf(&self, k: usize) -> f64 {
        self.components.iter().map(|(w, d)| w * d.pmf(k)).sum()
    }

    fn truncation_point(&self, eps: f64) -> usize {
        // A point covering each component at eps covers the mixture at eps.
        self.components
            .iter()
            .map(|(_, d)| d.truncation_point(eps))
            .max()
            .unwrap_or(0)
    }

    fn mean(&self) -> f64 {
        self.components.iter().map(|(w, d)| w * d.mean()).sum()
    }

    fn g0(&self, x: f64) -> f64 {
        self.components.iter().map(|(w, d)| w * d.g0(x)).sum()
    }

    fn g0_prime(&self, x: f64) -> f64 {
        self.components.iter().map(|(w, d)| w * d.g0_prime(x)).sum()
    }

    fn g0_double_prime(&self, x: f64) -> f64 {
        self.components
            .iter()
            .map(|(w, d)| w * d.g0_double_prime(x))
            .sum()
    }

    fn sample(&self, rng: &mut Xoshiro256StarStar) -> usize {
        // Pick a component by weight, then sample it.
        let mut u = rng.next_f64();
        for (w, d) in &self.components {
            if u < *w {
                return d.sample(rng);
            }
            u -= w;
        }
        // Floating-point slack: fall through to the last component.
        self.components
            .last()
            .expect("mixture non-empty")
            .1
            .sample(rng)
    }

    fn label(&self) -> String {
        let parts: Vec<String> = self
            .components
            .iter()
            .map(|(w, d)| format!("{:.2}·{}", w, d.label()))
            .collect();
        format!("Mix[{}]", parts.join(" + "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::invariants::check_distribution;
    use crate::distribution::{FixedFanout, PoissonFanout};

    fn relay_mixture() -> MixtureFanout {
        MixtureFanout::new(vec![
            (
                0.9,
                Box::new(FixedFanout::new(2)) as Box<dyn FanoutDistribution>,
            ),
            (0.1, Box::new(PoissonFanout::new(20.0))),
        ])
    }

    #[test]
    fn invariants_hold() {
        check_distribution(&relay_mixture(), 0.15);
    }

    #[test]
    fn mean_is_weighted_average() {
        let m = relay_mixture();
        assert!((m.mean() - (0.9 * 2.0 + 0.1 * 20.0)).abs() < 1e-10);
    }

    #[test]
    fn generating_functions_mix_linearly() {
        let m = relay_mixture();
        let f = FixedFanout::new(2);
        let p = PoissonFanout::new(20.0);
        for &x in &[0.2, 0.7, 1.0] {
            let expected = 0.9 * f.g0(x) + 0.1 * p.g0(x);
            assert!((m.g0(x) - expected).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn weights_normalize() {
        let m = MixtureFanout::new(vec![
            (
                3.0,
                Box::new(FixedFanout::new(1)) as Box<dyn FanoutDistribution>,
            ),
            (1.0, Box::new(FixedFanout::new(5))),
        ]);
        assert!((m.pmf(1) - 0.75).abs() < 1e-12);
        assert!((m.pmf(5) - 0.25).abs() < 1e-12);
        assert!((m.mean() - (0.75 + 1.25)).abs() < 1e-12);
    }

    #[test]
    fn sampling_hits_both_components() {
        let m = MixtureFanout::new(vec![
            (
                0.5,
                Box::new(FixedFanout::new(1)) as Box<dyn FanoutDistribution>,
            ),
            (0.5, Box::new(FixedFanout::new(9))),
        ]);
        let mut rng = Xoshiro256StarStar::new(31);
        let mut ones = 0;
        let mut nines = 0;
        for _ in 0..10_000 {
            match m.sample(&mut rng) {
                1 => ones += 1,
                9 => nines += 1,
                other => panic!("unexpected sample {other}"),
            }
        }
        assert!((4_500..5_500).contains(&ones), "ones = {ones}");
        assert!((4_500..5_500).contains(&nines), "nines = {nines}");
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn rejects_empty() {
        MixtureFanout::new(vec![]);
    }
}
