//! Deterministic fanout — the "traditional" gossip baseline.
//!
//! The paper contrasts its random-fanout algorithm with traditional
//! gossiping where "each node normally has a fixed number of gossiping
//! targets" (§1). `FixedFanout(f)` is that baseline: the point mass at
//! `f`, with `G0(x) = x^f` and `G1(x) = x^{f−1}`.

use gossip_stats::rng::Xoshiro256StarStar;

use super::FanoutDistribution;

/// Point-mass fanout: every member gossips to exactly `f` targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FixedFanout {
    f: usize,
}

impl FixedFanout {
    /// Creates the point mass at `f`.
    pub fn new(f: usize) -> Self {
        Self { f }
    }

    /// The fanout value.
    #[inline]
    pub fn fanout(&self) -> usize {
        self.f
    }
}

impl FanoutDistribution for FixedFanout {
    fn pmf(&self, k: usize) -> f64 {
        if k == self.f {
            1.0
        } else {
            0.0
        }
    }

    fn truncation_point(&self, _eps: f64) -> usize {
        self.f
    }

    fn mean(&self) -> f64 {
        self.f as f64
    }

    fn g0(&self, x: f64) -> f64 {
        x.powi(self.f as i32)
    }

    fn g0_prime(&self, x: f64) -> f64 {
        if self.f == 0 {
            return 0.0;
        }
        self.f as f64 * x.powi(self.f as i32 - 1)
    }

    fn g0_double_prime(&self, x: f64) -> f64 {
        if self.f < 2 {
            return 0.0;
        }
        (self.f * (self.f - 1)) as f64 * x.powi(self.f as i32 - 2)
    }

    fn g1(&self, x: f64) -> f64 {
        if self.f == 0 {
            return 0.0;
        }
        x.powi(self.f as i32 - 1)
    }

    fn g1_prime_at_one(&self) -> f64 {
        self.f.saturating_sub(1) as f64
    }

    fn sample(&self, _rng: &mut Xoshiro256StarStar) -> usize {
        self.f
    }

    fn label(&self) -> String {
        format!("Fixed({})", self.f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::invariants::check_distribution;

    #[test]
    fn invariants_hold() {
        for f in [1usize, 2, 4, 7] {
            check_distribution(&FixedFanout::new(f), 1e-9);
        }
    }

    #[test]
    fn generating_functions_are_monomials() {
        let d = FixedFanout::new(3);
        assert!((d.g0(0.5) - 0.125).abs() < 1e-15);
        assert!((d.g0_prime(0.5) - 3.0 * 0.25).abs() < 1e-15);
        assert!((d.g0_double_prime(0.5) - 6.0 * 0.5).abs() < 1e-15);
        assert!((d.g1(0.5) - 0.25).abs() < 1e-15);
        assert_eq!(d.g1_prime_at_one(), 2.0);
    }

    #[test]
    fn degenerate_zero_and_one() {
        let zero = FixedFanout::new(0);
        assert_eq!(zero.g0(0.7), 1.0);
        assert_eq!(zero.g0_prime(0.7), 0.0);
        assert_eq!(zero.g1(0.7), 0.0);
        assert_eq!(zero.g1_prime_at_one(), 0.0);
        let one = FixedFanout::new(1);
        // Degree-1 graphs are perfect matchings: G1 ≡ 1, mean excess 0.
        assert_eq!(one.g1(0.3), 1.0);
        assert_eq!(one.g1_prime_at_one(), 0.0);
    }

    #[test]
    fn sample_is_constant() {
        let d = FixedFanout::new(5);
        let mut rng = Xoshiro256StarStar::new(11);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 5);
        }
    }
}
