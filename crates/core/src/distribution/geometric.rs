//! Geometric fanout on `{0, 1, 2, …}`.
//!
//! Models "gossip until you lose interest" relaying: after each send the
//! member continues with probability `1 − p`. Heavier-tailed than Poisson
//! at the same mean, which makes it a useful stress case for the model's
//! claim to handle arbitrary fanout distributions. Closed forms:
//! `G0(x) = p / (1 − (1 − p)x)`.

use gossip_stats::rng::Xoshiro256StarStar;

use super::FanoutDistribution;

/// Geometric fanout: `P(F = k) = p(1 − p)^k`, mean `(1 − p)/p`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeometricFanout {
    p: f64,
}

impl GeometricFanout {
    /// Creates a geometric fanout with stop probability `p ∈ (0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!(
            p > 0.0 && p <= 1.0 && p.is_finite(),
            "geometric stop probability must be in (0, 1], got {p}"
        );
        Self { p }
    }

    /// Creates a geometric fanout with the given mean `(1 − p)/p`.
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean >= 0.0 && mean.is_finite(),
            "geometric mean must be finite and >= 0, got {mean}"
        );
        Self::new(1.0 / (mean + 1.0))
    }

    /// Stop probability `p`.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl FanoutDistribution for GeometricFanout {
    fn pmf(&self, k: usize) -> f64 {
        self.p * (1.0 - self.p).powi(k as i32)
    }

    fn truncation_point(&self, eps: f64) -> usize {
        // Tail after K is (1 − p)^{K+1}.
        if self.p >= 1.0 {
            return 0;
        }
        let k = (eps.ln() / (1.0 - self.p).ln()).ceil();
        k.max(0.0) as usize
    }

    fn mean(&self) -> f64 {
        (1.0 - self.p) / self.p
    }

    fn g0(&self, x: f64) -> f64 {
        self.p / (1.0 - (1.0 - self.p) * x)
    }

    fn g0_prime(&self, x: f64) -> f64 {
        let r = 1.0 - self.p;
        let d = 1.0 - r * x;
        self.p * r / (d * d)
    }

    fn g0_double_prime(&self, x: f64) -> f64 {
        let r = 1.0 - self.p;
        let d = 1.0 - r * x;
        2.0 * self.p * r * r / (d * d * d)
    }

    fn g1_prime_at_one(&self) -> f64 {
        // G0''(1)/G0'(1) = 2(1 − p)/p.
        2.0 * (1.0 - self.p) / self.p
    }

    fn sample(&self, rng: &mut Xoshiro256StarStar) -> usize {
        // Inversion: K = floor(ln U / ln(1 − p)).
        if self.p >= 1.0 {
            return 0;
        }
        let u = rng.next_f64().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - self.p).ln()).floor() as usize
    }

    fn label(&self) -> String {
        format!("Geom(p={})", self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::invariants::check_distribution;

    #[test]
    fn invariants_hold() {
        check_distribution(&GeometricFanout::new(0.5), 0.05);
        check_distribution(&GeometricFanout::with_mean(4.0), 0.1);
    }

    #[test]
    fn with_mean_roundtrip() {
        for &m in &[0.0, 1.0, 3.5, 10.0] {
            let d = GeometricFanout::with_mean(m);
            assert!((d.mean() - m).abs() < 1e-12, "mean {m}: got {}", d.mean());
        }
    }

    #[test]
    fn closed_forms_match_series() {
        let d = GeometricFanout::new(0.3);
        let kmax = d.truncation_point(1e-14);
        for &x in &[0.0, 0.5, 0.9] {
            let s = crate::series::eval_g0(|k| d.pmf(k), x, kmax);
            assert!((d.g0(x) - s).abs() < 1e-10, "x = {x}");
            let sp = crate::series::eval_g0_prime(|k| d.pmf(k), x, kmax);
            assert!((d.g0_prime(x) - sp).abs() < 1e-9, "x = {x}");
            let spp = crate::series::eval_g0_double_prime(|k| d.pmf(k), x, kmax);
            assert!((d.g0_double_prime(x) - spp).abs() < 1e-8, "x = {x}");
        }
    }

    #[test]
    fn excess_degree_formula() {
        let d = GeometricFanout::new(0.25);
        assert!((d.g1_prime_at_one() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_p_one() {
        let d = GeometricFanout::new(1.0);
        assert_eq!(d.pmf(0), 1.0);
        assert_eq!(d.mean(), 0.0);
        let mut rng = Xoshiro256StarStar::new(2);
        assert_eq!(d.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "stop probability")]
    fn rejects_zero_p() {
        GeometricFanout::new(0.0);
    }
}
