//! Discrete-uniform fanout on `{lo, …, hi}`.
//!
//! The simplest bounded-jitter fanout: a member picks any target count in
//! a range with equal probability, e.g. "gossip to 2–6 peers". Useful in
//! the distribution-zoo experiments for a variance between fixed (zero)
//! and geometric (high) at the same mean.

use gossip_stats::rng::Xoshiro256StarStar;

use super::FanoutDistribution;

/// Uniform fanout over the inclusive integer range `[lo, hi]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UniformFanout {
    lo: usize,
    hi: usize,
}

impl UniformFanout {
    /// Creates the uniform distribution on `{lo, …, hi}`. Panics if
    /// `lo > hi`.
    pub fn new(lo: usize, hi: usize) -> Self {
        assert!(lo <= hi, "uniform fanout needs lo <= hi, got [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// Lower bound.
    #[inline]
    pub fn lo(&self) -> usize {
        self.lo
    }

    /// Upper bound.
    #[inline]
    pub fn hi(&self) -> usize {
        self.hi
    }

    #[inline]
    fn span(&self) -> usize {
        self.hi - self.lo + 1
    }
}

impl FanoutDistribution for UniformFanout {
    fn pmf(&self, k: usize) -> f64 {
        if (self.lo..=self.hi).contains(&k) {
            1.0 / self.span() as f64
        } else {
            0.0
        }
    }

    fn truncation_point(&self, _eps: f64) -> usize {
        self.hi
    }

    fn mean(&self) -> f64 {
        (self.lo + self.hi) as f64 / 2.0
    }

    fn g1_prime_at_one(&self) -> f64 {
        // E[K(K−1)] / E[K] computed exactly from the moments of the
        // uniform distribution: E[K²] = (2hi² + 2hi·lo + 2lo² + hi + lo)/6
        // … simpler and just as exact: direct sums over the small support.
        let mut ek = 0.0;
        let mut ekk1 = 0.0;
        for k in self.lo..=self.hi {
            let p = 1.0 / self.span() as f64;
            ek += k as f64 * p;
            ekk1 += (k * k.saturating_sub(1)) as f64 * p;
        }
        if ek <= 0.0 {
            0.0
        } else {
            ekk1 / ek
        }
    }

    fn sample(&self, rng: &mut Xoshiro256StarStar) -> usize {
        self.lo + rng.next_below(self.span() as u64) as usize
    }

    fn label(&self) -> String {
        format!("U[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::invariants::check_distribution;

    #[test]
    fn invariants_hold() {
        check_distribution(&UniformFanout::new(1, 7), 0.05);
        check_distribution(&UniformFanout::new(3, 3), 1e-9);
        check_distribution(&UniformFanout::new(0, 2), 0.05);
    }

    #[test]
    fn pmf_and_mean() {
        let d = UniformFanout::new(2, 6);
        assert!((d.pmf(2) - 0.2).abs() < 1e-15);
        assert!((d.pmf(6) - 0.2).abs() < 1e-15);
        assert_eq!(d.pmf(1), 0.0);
        assert_eq!(d.pmf(7), 0.0);
        assert!((d.mean() - 4.0).abs() < 1e-15);
    }

    #[test]
    fn excess_degree_against_series() {
        let d = UniformFanout::new(1, 9);
        let kmax = 9;
        let g1p = crate::series::eval_g0_double_prime(|k| d.pmf(k), 1.0, kmax)
            / crate::series::eval_g0_prime(|k| d.pmf(k), 1.0, kmax);
        assert!((d.g1_prime_at_one() - g1p).abs() < 1e-12);
    }

    #[test]
    fn samples_stay_in_range() {
        let d = UniformFanout::new(2, 5);
        let mut rng = Xoshiro256StarStar::new(8);
        let mut seen = [false; 6];
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((2..=5).contains(&s));
            seen[s] = true;
        }
        assert!(seen[2] && seen[3] && seen[4] && seen[5]);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn rejects_inverted_range() {
        UniformFanout::new(5, 2);
    }
}
