//! Fanout distributions and their probability generating functions.
//!
//! The paper's general gossiping algorithm (Fig. 1) lets every member draw
//! its fanout from an arbitrary distribution `P` — the authors call out
//! supporting "various fanout distributions, rather than only the Poisson
//! distribution" as a main advantage of their model. [`FanoutDistribution`]
//! is that `P`: it exposes the pmf, the generating functions
//! `G0(x) = Σ p_k x^k` and `G1(x) = G0'(x) / G0'(1)` that drive the
//! random-graph analysis, and sampling for the simulation side.
//!
//! Default trait methods evaluate everything from the pmf via truncated
//! series ([`crate::series`]); distributions with closed forms override
//! them (Poisson's `G0(x) = e^{z(x−1)}`, binomial's `(1 − p + px)^m`, …).

use gossip_stats::rng::Xoshiro256StarStar;

use crate::series;
use crate::DEFAULT_EPS;

mod binomial;
mod empirical;
mod fixed;
mod geometric;
mod mixture;
mod poisson;
mod powerlaw;
mod uniform;

pub use binomial::BinomialFanout;
pub use empirical::EmpiricalFanout;
pub use fixed::FixedFanout;
pub use geometric::GeometricFanout;
pub use mixture::MixtureFanout;
pub use poisson::PoissonFanout;
pub use powerlaw::PowerLawFanout;
pub use uniform::UniformFanout;

/// Hard cap on series truncation, to keep a buggy pmf from spinning.
pub const TRUNCATION_HARD_CAP: usize = 1 << 20;

/// A probability distribution over fanouts (non-negative integers).
///
/// Implementors must guarantee `Σ_k pmf(k) = 1` and `pmf(k) ≥ 0`. The
/// generating-function methods have series-based defaults; override them
/// when a closed form exists — the percolation solver calls `g1` inside
/// its fixed-point loop, so closed forms directly speed up the model.
pub trait FanoutDistribution: Send + Sync {
    /// Probability that a member's fanout equals `k`.
    fn pmf(&self, k: usize) -> f64;

    /// Smallest `K` such that the tail mass beyond `K` is below `eps`.
    ///
    /// Used to truncate the series defaults. Finite-support distributions
    /// return their maximum outcome.
    fn truncation_point(&self, eps: f64) -> usize {
        series::truncation_by_mass(|k| self.pmf(k), eps, TRUNCATION_HARD_CAP)
    }

    /// Mean fanout `E[F] = G0'(1)`.
    fn mean(&self) -> f64 {
        series::mean(|k| self.pmf(k), self.truncation_point(DEFAULT_EPS))
    }

    /// Generating function `G0(x) = Σ_k p_k x^k` for `x ∈ [0, 1]`.
    fn g0(&self, x: f64) -> f64 {
        series::eval_g0(|k| self.pmf(k), x, self.truncation_point(DEFAULT_EPS))
    }

    /// First derivative `G0'(x)`.
    fn g0_prime(&self, x: f64) -> f64 {
        series::eval_g0_prime(|k| self.pmf(k), x, self.truncation_point(DEFAULT_EPS))
    }

    /// Second derivative `G0''(x)`.
    fn g0_double_prime(&self, x: f64) -> f64 {
        series::eval_g0_double_prime(|k| self.pmf(k), x, self.truncation_point(DEFAULT_EPS))
    }

    /// Excess-degree generating function `G1(x) = G0'(x)/G0'(1)`.
    ///
    /// Returns 0 for distributions with zero mean (no edges at all).
    fn g1(&self, x: f64) -> f64 {
        let norm = self.g0_prime(1.0);
        if norm <= 0.0 {
            return 0.0;
        }
        self.g0_prime(x) / norm
    }

    /// `G1'(1) = G0''(1)/G0'(1)` — the mean excess degree, whose
    /// reciprocal is the paper's critical nonfailed ratio (Eq. 3).
    fn g1_prime_at_one(&self) -> f64 {
        let norm = self.g0_prime(1.0);
        if norm <= 0.0 {
            return 0.0;
        }
        self.g0_double_prime(1.0) / norm
    }

    /// Draws a random fanout.
    fn sample(&self, rng: &mut Xoshiro256StarStar) -> usize;

    /// Short human-readable description, e.g. `"Po(4.0)"`.
    fn label(&self) -> String;
}

/// Blanket impl so `&D` and boxed distributions work wherever a
/// [`FanoutDistribution`] is expected.
impl<D: FanoutDistribution + ?Sized> FanoutDistribution for &D {
    fn pmf(&self, k: usize) -> f64 {
        (**self).pmf(k)
    }
    fn truncation_point(&self, eps: f64) -> usize {
        (**self).truncation_point(eps)
    }
    fn mean(&self) -> f64 {
        (**self).mean()
    }
    fn g0(&self, x: f64) -> f64 {
        (**self).g0(x)
    }
    fn g0_prime(&self, x: f64) -> f64 {
        (**self).g0_prime(x)
    }
    fn g0_double_prime(&self, x: f64) -> f64 {
        (**self).g0_double_prime(x)
    }
    fn g1(&self, x: f64) -> f64 {
        (**self).g1(x)
    }
    fn g1_prime_at_one(&self) -> f64 {
        (**self).g1_prime_at_one()
    }
    fn sample(&self, rng: &mut Xoshiro256StarStar) -> usize {
        (**self).sample(rng)
    }
    fn label(&self) -> String {
        (**self).label()
    }
}

impl FanoutDistribution for Box<dyn FanoutDistribution> {
    fn pmf(&self, k: usize) -> f64 {
        (**self).pmf(k)
    }
    fn truncation_point(&self, eps: f64) -> usize {
        (**self).truncation_point(eps)
    }
    fn mean(&self) -> f64 {
        (**self).mean()
    }
    fn g0(&self, x: f64) -> f64 {
        (**self).g0(x)
    }
    fn g0_prime(&self, x: f64) -> f64 {
        (**self).g0_prime(x)
    }
    fn g0_double_prime(&self, x: f64) -> f64 {
        (**self).g0_double_prime(x)
    }
    fn g1(&self, x: f64) -> f64 {
        (**self).g1(x)
    }
    fn g1_prime_at_one(&self) -> f64 {
        (**self).g1_prime_at_one()
    }
    fn sample(&self, rng: &mut Xoshiro256StarStar) -> usize {
        (**self).sample(rng)
    }
    fn label(&self) -> String {
        (**self).label()
    }
}

/// Shared invariant checks used by the per-distribution test modules.
#[cfg(test)]
pub(crate) mod invariants {
    use super::*;

    /// Asserts the pmf sums to 1, G0(1) = 1, the two mean formulas agree,
    /// derivatives match finite differences, and sampling matches the mean.
    pub fn check_distribution<D: FanoutDistribution>(dist: &D, sample_tol: f64) {
        let kmax = dist.truncation_point(1e-12);
        let mass: f64 = (0..=kmax).map(|k| dist.pmf(k)).sum();
        assert!(
            (mass - 1.0).abs() < 1e-9,
            "{}: pmf mass {mass}",
            dist.label()
        );
        assert!(
            (dist.g0(1.0) - 1.0).abs() < 1e-9,
            "{}: G0(1) = {}",
            dist.label(),
            dist.g0(1.0)
        );
        // Mean consistency.
        let mean_series = series::mean(|k| dist.pmf(k), kmax);
        assert!(
            (dist.mean() - mean_series).abs() < 1e-8 * (1.0 + mean_series),
            "{}: mean {} vs series {}",
            dist.label(),
            dist.mean(),
            mean_series
        );
        assert!(
            (dist.g0_prime(1.0) - dist.mean()).abs() < 1e-8 * (1.0 + dist.mean()),
            "{}: G0'(1) != mean",
            dist.label()
        );
        // Finite-difference check of derivatives at an interior point.
        let x = 0.6;
        let h = 1e-6;
        let fd1 = (dist.g0(x + h) - dist.g0(x - h)) / (2.0 * h);
        assert!(
            (dist.g0_prime(x) - fd1).abs() < 1e-5 * (1.0 + fd1.abs()),
            "{}: G0' mismatch at {x}: {} vs fd {}",
            dist.label(),
            dist.g0_prime(x),
            fd1
        );
        let fd2 = (dist.g0_prime(x + h) - dist.g0_prime(x - h)) / (2.0 * h);
        assert!(
            (dist.g0_double_prime(x) - fd2).abs() < 1e-4 * (1.0 + fd2.abs()),
            "{}: G0'' mismatch at {x}",
            dist.label()
        );
        // G1 normalisation.
        if dist.mean() > 0.0 {
            assert!(
                (dist.g1(1.0) - 1.0).abs() < 1e-9,
                "{}: G1(1) = {}",
                dist.label(),
                dist.g1(1.0)
            );
        }
        // Sampling matches the analytic mean.
        let mut rng = Xoshiro256StarStar::new(0x000F_A170_u64);
        let n = 60_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += dist.sample(&mut rng) as f64;
        }
        let emp_mean = sum / n as f64;
        assert!(
            (emp_mean - dist.mean()).abs() < sample_tol,
            "{}: empirical mean {} vs {}",
            dist.label(),
            emp_mean,
            dist.mean()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_object_dispatch() {
        let boxed: Box<dyn FanoutDistribution> = Box::new(PoissonFanout::new(3.0));
        assert!((boxed.mean() - 3.0).abs() < 1e-12);
        assert!((boxed.g0(1.0) - 1.0).abs() < 1e-12);
        assert!(boxed.label().contains("Po"));
        let reference = &boxed;
        assert!((reference.g1(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reference_impl_delegates() {
        let d = FixedFanout::new(4);
        let r: &dyn FanoutDistribution = &d;
        assert_eq!(r.truncation_point(1e-9), 4);
        assert!((r.g1_prime_at_one() - 3.0).abs() < 1e-12);
        let mut rng = Xoshiro256StarStar::new(1);
        assert_eq!(r.sample(&mut rng), 4);
    }
}
