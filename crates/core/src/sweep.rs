//! Parameter-sweep series for the paper's analytic figures.
//!
//! The bench harness regenerates each figure from these functions; they
//! produce plain `(x, y)` series so the printing/CSV layer stays dumb.

use serde::{Deserialize, Serialize};

use crate::distribution::PoissonFanout;
use crate::error::ModelError;
use crate::percolation::SitePercolation;
use crate::poisson_case;
use crate::success;

/// One point of an analytic curve.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Independent variable (meaning depends on the sweep).
    pub x: f64,
    /// Dependent variable.
    pub y: f64,
}

/// A labelled analytic curve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Curve {
    /// Legend label, e.g. `"q=0.4"`.
    pub label: String,
    /// The points, in increasing `x`.
    pub points: Vec<SweepPoint>,
}

/// Fig. 2 — mean fanout `z` required for reliability `S` (Eq. 12), one
/// curve per `q`.
///
/// `s_range` is swept inclusively from `s_min` to `s_max` in `steps`
/// points (the paper uses S ∈ [0.1111, 0.9999]).
pub fn fig2_fanout_vs_reliability(
    qs: &[f64],
    s_min: f64,
    s_max: f64,
    steps: usize,
) -> Result<Vec<Curve>, ModelError> {
    assert!(steps >= 2, "need at least 2 sweep points");
    let mut curves = Vec::with_capacity(qs.len());
    for &q in qs {
        let mut points = Vec::with_capacity(steps);
        for i in 0..steps {
            let s = s_min + (s_max - s_min) * i as f64 / (steps - 1) as f64;
            let z = poisson_case::mean_fanout_for(s, q)?;
            points.push(SweepPoint { x: s, y: z });
        }
        curves.push(Curve {
            label: format!("q={q}"),
            points,
        });
    }
    Ok(curves)
}

/// Fig. 3 — minimum executions `t` for gossip success `p_s` as a function
/// of per-execution reliability `S` (Eq. 6).
pub fn fig3_required_executions(
    p_s: f64,
    s_min: f64,
    s_max: f64,
    steps: usize,
) -> Result<Curve, ModelError> {
    assert!(steps >= 2, "need at least 2 sweep points");
    let mut points = Vec::with_capacity(steps);
    for i in 0..steps {
        let s = s_min + (s_max - s_min) * i as f64 / (steps - 1) as f64;
        let t = success::required_executions(s, p_s)?;
        points.push(SweepPoint {
            x: s,
            y: t as f64,
        });
    }
    Ok(Curve {
        label: format!("ps={p_s}"),
        points,
    })
}

/// The analytic curves of Figs. 4/5 — reliability vs. mean fanout for a
/// set of `q` values, Poisson fanout (Eq. 11 solved at each point).
///
/// The paper sweeps `f` from 1.1 to 6.7 in steps of 0.4.
pub fn fig45_reliability_vs_fanout(
    qs: &[f64],
    f_min: f64,
    f_max: f64,
    step: f64,
) -> Result<Vec<Curve>, ModelError> {
    assert!(step > 0.0, "step must be positive");
    let mut curves = Vec::with_capacity(qs.len());
    for &q in qs {
        let mut points = Vec::new();
        let mut f = f_min;
        while f <= f_max + 1e-9 {
            let dist = PoissonFanout::new(f);
            let r = SitePercolation::new(&dist, q)?.reliability()?;
            points.push(SweepPoint { x: f, y: r });
            f += step;
        }
        curves.push(Curve {
            label: format!("q={q}"),
            points,
        });
    }
    Ok(curves)
}

/// The paper's fanout grid for Figs. 4/5: 1.1 to 6.7 step 0.4.
pub fn paper_fanout_grid() -> Vec<f64> {
    let mut grid = Vec::new();
    let mut f = 1.1;
    while f <= 6.7 + 1e-9 {
        grid.push((f * 10.0f64).round() / 10.0);
        f += 0.4;
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_curves_shape() {
        let curves =
            fig2_fanout_vs_reliability(&[0.2, 0.4, 0.6, 0.8, 1.0], 0.1111, 0.9999, 50).unwrap();
        assert_eq!(curves.len(), 5);
        for c in &curves {
            assert_eq!(c.points.len(), 50);
            // z grows with S within each curve.
            for w in c.points.windows(2) {
                assert!(w[1].y >= w[0].y, "{}: z not monotone in S", c.label);
            }
        }
        // Smaller q needs larger fanout at the same S.
        let z_q02 = curves[0].points[25].y;
        let z_q10 = curves[4].points[25].y;
        assert!(z_q02 > z_q10);
        // Paper: z tops out near 50 at q = 0.2, S = 0.9999.
        let z_max = curves[0].points.last().unwrap().y;
        assert!((40.0..50.5).contains(&z_max), "z_max = {z_max}");
    }

    #[test]
    fn fig3_curve_shape() {
        let c = fig3_required_executions(0.999, 0.2, 0.99, 80).unwrap();
        assert_eq!(c.points.len(), 80);
        for w in c.points.windows(2) {
            assert!(w[1].y <= w[0].y, "t must fall as S rises");
        }
        // Paper Fig. 3: t reaches ~20 at the small-S end, ~2 near S=0.95.
        assert!(c.points[0].y >= 20.0);
        assert!(c.points.last().unwrap().y <= 3.0);
    }

    #[test]
    fn fig45_curves_shape() {
        let curves = fig45_reliability_vs_fanout(&[0.1, 0.5, 1.0], 1.1, 6.7, 0.4).unwrap();
        assert_eq!(curves.len(), 3);
        let grid = paper_fanout_grid();
        assert_eq!(curves[0].points.len(), grid.len());
        // q = 0.1 stays subcritical until f > 10 — all zeros on this grid.
        assert!(curves[0].points.iter().all(|p| p.y < 1e-9));
        // q = 1.0 reaches ~0.99+ by f = 6.7.
        assert!(curves[2].points.last().unwrap().y > 0.99);
        // Monotone in f for fixed q.
        for c in &curves {
            for w in c.points.windows(2) {
                assert!(w[1].y >= w[0].y - 1e-12);
            }
        }
    }

    #[test]
    fn paper_grid_matches_caption() {
        let grid = paper_fanout_grid();
        assert_eq!(grid.first().copied(), Some(1.1));
        assert_eq!(grid.last().copied(), Some(6.7));
        assert_eq!(grid.len(), 15);
        for w in grid.windows(2) {
            assert!(((w[1] - w[0]) - 0.4).abs() < 1e-9);
        }
    }
}
