//! Parameter-sweep series for the paper's analytic figures.
//!
//! The Fig. 2/3 sweeps moved onto the scenario API
//! ([`crate::scenario::SweepGrid`]); what remains here is the
//! Figs. 4/5 analytic curve helper and the paper's fanout grid, both
//! still shared by the bench harness.

use serde::{Deserialize, Serialize};

use crate::distribution::PoissonFanout;
use crate::error::ModelError;
use crate::percolation::SitePercolation;

/// One point of an analytic curve.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Independent variable (meaning depends on the sweep).
    pub x: f64,
    /// Dependent variable.
    pub y: f64,
}

/// A labelled analytic curve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Curve {
    /// Legend label, e.g. `"q=0.4"`.
    pub label: String,
    /// The points, in increasing `x`.
    pub points: Vec<SweepPoint>,
}

/// The analytic curves of Figs. 4/5 — reliability vs. mean fanout for a
/// set of `q` values, Poisson fanout (Eq. 11 solved at each point).
///
/// The paper sweeps `f` from 1.1 to 6.7 in steps of 0.4.
pub fn fig45_reliability_vs_fanout(
    qs: &[f64],
    f_min: f64,
    f_max: f64,
    step: f64,
) -> Result<Vec<Curve>, ModelError> {
    assert!(step > 0.0, "step must be positive");
    let mut curves = Vec::with_capacity(qs.len());
    for &q in qs {
        let mut points = Vec::new();
        let mut f = f_min;
        while f <= f_max + 1e-9 {
            let dist = PoissonFanout::new(f);
            let r = SitePercolation::new(&dist, q)?.reliability()?;
            points.push(SweepPoint { x: f, y: r });
            f += step;
        }
        curves.push(Curve {
            label: format!("q={q}"),
            points,
        });
    }
    Ok(curves)
}

/// The paper's fanout grid for Figs. 4/5: 1.1 to 6.7 step 0.4.
pub fn paper_fanout_grid() -> Vec<f64> {
    let mut grid = Vec::new();
    let mut f = 1.1;
    while f <= 6.7 + 1e-9 {
        grid.push((f * 10.0f64).round() / 10.0);
        f += 0.4;
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig45_curves_shape() {
        let curves = fig45_reliability_vs_fanout(&[0.1, 0.5, 1.0], 1.1, 6.7, 0.4).unwrap();
        assert_eq!(curves.len(), 3);
        let grid = paper_fanout_grid();
        assert_eq!(curves[0].points.len(), grid.len());
        // q = 0.1 stays subcritical until f > 10 — all zeros on this grid.
        assert!(curves[0].points.iter().all(|p| p.y < 1e-9));
        // q = 1.0 reaches ~0.99+ by f = 6.7.
        assert!(curves[2].points.last().unwrap().y > 0.99);
        // Monotone in f for fixed q.
        for c in &curves {
            for w in c.points.windows(2) {
                assert!(w[1].y >= w[0].y - 1e-12);
            }
        }
    }

    #[test]
    fn paper_grid_matches_caption() {
        let grid = paper_fanout_grid();
        assert_eq!(grid.first().copied(), Some(1.1));
        assert_eq!(grid.last().copied(), Some(6.7));
        assert_eq!(grid.len(), 15);
        for w in grid.windows(2) {
            assert!(((w[1] - w[0]) - 0.4).abs() < 1e-9);
        }
    }
}
